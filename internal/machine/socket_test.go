package machine

import (
	"math"
	"testing"
	"time"
)

func dualSocketConfig() Config {
	cfg := DefaultConfig()
	cfg.Sockets = 2
	return cfg
}

func TestSocketCount(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.SocketCount() != 1 {
		t.Errorf("zero value should mean one socket, got %d", cfg.SocketCount())
	}
	cfg.Sockets = 2
	if cfg.SocketCount() != 2 {
		t.Errorf("SocketCount=%d", cfg.SocketCount())
	}
	cfg.Sockets = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative socket count should error")
	}
}

func TestAddAppSocketValidation(t *testing.T) {
	m, err := New(dualSocketConfig())
	if err != nil {
		t.Fatal(err)
	}
	model := llcSensitiveModel()
	model.Socket = 2
	if err := m.AddApp(model); err == nil {
		t.Error("out-of-range socket should error")
	}
	model.Socket = -1
	if err := model.Validate(); err == nil {
		t.Error("negative socket should error")
	}
}

func TestPerSocketCoreAccounting(t *testing.T) {
	m, err := New(dualSocketConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 16 cores fit on each socket independently.
	big0 := llcSensitiveModel()
	big0.Name = "s0"
	big0.Cores = 16
	if err := m.AddApp(big0); err != nil {
		t.Fatal(err)
	}
	big1 := llcSensitiveModel()
	big1.Name = "s1"
	big1.Cores = 16
	big1.Socket = 1
	if err := m.AddApp(big1); err != nil {
		t.Fatalf("socket 1 has its own cores: %v", err)
	}
	extra := insensitiveModel()
	extra.Socket = 1
	if err := m.AddApp(extra); err == nil {
		t.Error("socket 1 is full; oversubscription should error")
	}
}

// TestSocketsAreIsolatedDomains: a heavy streamer on socket 1 must not
// slow an application on socket 0 — separate LLCs, separate DRAM budgets.
func TestSocketsAreIsolatedDomains(t *testing.T) {
	cfg := dualSocketConfig()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	victim := llcSensitiveModel()
	if err := m.AddApp(victim); err != nil {
		t.Fatal(err)
	}
	alonePerfs, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}

	bully := bwSensitiveModel()
	bully.Socket = 1
	if err := m.AddApp(bully); err != nil {
		t.Fatal(err)
	}
	perfs, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(perfs[0].IPS-alonePerfs[0].IPS) > 1e-6*alonePerfs[0].IPS {
		t.Errorf("cross-socket interference: %v vs %v", perfs[0].IPS, alonePerfs[0].IPS)
	}
	if perfs[1].IPS <= 0 {
		t.Error("socket 1 app did not run")
	}
}

// TestSameSocketStillContends: two streamers on the same socket of a
// dual-socket machine share that socket's budget.
func TestSameSocketStillContends(t *testing.T) {
	cfg := dualSocketConfig()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := bwSensitiveModel()
	a.Socket = 1
	if err := m.AddApp(a); err != nil {
		t.Fatal(err)
	}
	solo, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	b := bwSensitiveModel()
	b.Name = "bw2"
	b.Socket = 1
	if err := m.AddApp(b); err != nil {
		t.Fatal(err)
	}
	both, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if both[0].IPS >= solo[0].IPS {
		t.Errorf("same-socket streamers should contend: %v vs %v", both[0].IPS, solo[0].IPS)
	}
}

func TestStepAdvancesAllSockets(t *testing.T) {
	m, err := New(dualSocketConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := llcSensitiveModel()
	b := bwSensitiveModel()
	b.Socket = 1
	if err := m.AddApp(a); err != nil {
		t.Fatal(err)
	}
	if err := m.AddApp(b); err != nil {
		t.Fatal(err)
	}
	if err := m.Step(time.Second); err != nil {
		t.Fatal(err)
	}
	for _, name := range m.Apps() {
		c, err := m.ReadCounters(name)
		if err != nil {
			t.Fatal(err)
		}
		if c.Instructions <= 0 {
			t.Errorf("%s: counters did not advance", name)
		}
	}
}

func TestSolveForRejectsBadSocket(t *testing.T) {
	m, err := New(DefaultConfig()) // single socket
	if err != nil {
		t.Fatal(err)
	}
	model := llcSensitiveModel()
	model.Socket = 1
	_, err = m.SolveFor([]AppModel{model}, []Alloc{{CBM: 1, MBALevel: 100}})
	if err == nil {
		t.Error("socket beyond the machine should error")
	}
}
