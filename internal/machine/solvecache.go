package machine

import (
	"encoding/binary"
	"math"
)

// defaultSolveCacheEntries bounds the memoization table. The largest
// in-repo consumer is the ST oracle's exhaustive 4-application search
// (~31k states); when the bound is exceeded the whole table is dropped,
// which keeps behaviour deterministic (the cache only ever changes
// speed, never values — Solve is a pure function of its inputs).
const defaultSolveCacheEntries = 1 << 15

// solveCache memoizes SolveFor results keyed by an exact binary
// fingerprint of the resolved models and allocations. Because the key
// covers every solver input except the immutable machine Config, a hit
// is guaranteed bit-identical to recomputation; AddApp/RemoveApp/phase
// flushes (see Machine) only bound staleness and memory.
type solveCache struct {
	entries map[string][]Perf
	max     int
	key     []byte // scratch for the current key

	// Hits and Misses instrument the cache for tests and benchmarks.
	hits, misses uint64
}

func newSolveCache(max int) *solveCache {
	return &solveCache{entries: make(map[string][]Perf), max: max}
}

// invalidate drops every entry. Safe on a nil cache.
func (c *solveCache) invalidate() {
	if c == nil || len(c.entries) == 0 {
		return
	}
	clear(c.entries)
}

// encodeKey writes the exact solver fingerprint of (models, allocs)
// into the scratch key: every AppModel field the solver reads, plus the
// allocation pair. Names are deliberately excluded — they do not affect
// the solved steady state.
func (c *solveCache) encodeKey(models []AppModel, allocs []Alloc) {
	k := c.key[:0]
	k = binary.AppendUvarint(k, uint64(len(models)))
	for i := range models {
		mo := &models[i]
		k = binary.AppendUvarint(k, uint64(mo.Cores))
		k = binary.AppendUvarint(k, uint64(mo.Socket))
		k = binary.LittleEndian.AppendUint64(k, math.Float64bits(mo.CPIBase))
		k = binary.LittleEndian.AppendUint64(k, math.Float64bits(mo.AccPerInstr))
		k = binary.LittleEndian.AppendUint64(k, math.Float64bits(mo.StreamFrac))
		k = binary.LittleEndian.AppendUint64(k, math.Float64bits(mo.MLP))
		k = binary.AppendUvarint(k, uint64(len(mo.Hot)))
		for _, h := range mo.Hot {
			k = binary.LittleEndian.AppendUint64(k, math.Float64bits(h.Bytes))
			k = binary.LittleEndian.AppendUint64(k, math.Float64bits(h.Weight))
			k = binary.LittleEndian.AppendUint64(k, math.Float64bits(h.MLP))
		}
		k = binary.LittleEndian.AppendUint64(k, allocs[i].CBM)
		k = binary.AppendUvarint(k, uint64(allocs[i].MBALevel))
	}
	c.key = k
}

// lookup returns the memoized solve for (models, allocs), if present.
// The returned slice is the cache's own entry: the caller must copy it
// into its destination and never mutate or retain it (solveForInto does
// exactly that), which keeps a hit allocation-free. It leaves the
// encoded key in the scratch so a following store needs no re-encoding.
func (c *solveCache) lookup(models []AppModel, allocs []Alloc) ([]Perf, bool) {
	c.encodeKey(models, allocs)
	cached, ok := c.entries[string(c.key)]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	return cached, true
}

// store memoizes perfs under the key left by the preceding lookup. The
// entry keeps its own copy so later caller mutations cannot corrupt it.
func (c *solveCache) store(perfs []Perf) {
	if len(c.entries) >= c.max {
		clear(c.entries)
	}
	cp := make([]Perf, len(perfs))
	copy(cp, perfs)
	c.entries[string(c.key)] = cp
}

// SolveCacheStats reports the machine's memoization counters (zeroes
// when the cache is disabled) — exposed for tests and benchmarks.
func (m *Machine) SolveCacheStats() (hits, misses uint64, entries int) {
	if m.cache == nil {
		return 0, 0, 0
	}
	return m.cache.hits, m.cache.misses, len(m.cache.entries)
}
