package machine

import (
	"encoding/binary"
	"sync/atomic"
)

// defaultSolveCacheEntries bounds the per-machine memoization table.
// The largest in-repo consumer is the ST oracle's exhaustive
// 4-application search (~31k states); when the bound is exceeded a
// bounded batch is evicted (see store), which keeps behaviour
// deterministic (the cache only ever changes speed, never values —
// Solve is a pure function of its inputs).
const defaultSolveCacheEntries = 1 << 15

// solveCache is the per-machine L1: it memoizes SolveFor results keyed
// by an exact binary fingerprint of the machine config, the resolved
// model digests, and the allocations. Because the key covers every
// solver input, a hit is guaranteed bit-identical to recomputation;
// AddApp/RemoveApp/phase flushes (see Machine) only bound staleness and
// memory. Entries are immutable and may be shared with the process-wide
// L2 (sharedcache.go): both tiers hand out slices that callers copy
// from and never mutate.
//
// Storage is an open-addressed fingerprint table (perftable.go) rather
// than a Go map: encodeKey leaves both the exact key bytes and their
// 64-bit hash in the scratch, so a period's lookup/store pair probes on
// a precomputed fingerprint instead of re-hashing a string key, and the
// arena-backed keys need no intern table to keep stores
// allocation-free.
type solveCache struct {
	tab perfTable
	// base is an optional read-only tier below tab: a checkpoint's table
	// adopted by reference in RestoreHotState (hotstate.go). Lookups
	// fall back to it after missing tab; stores always go to tab (a key
	// can never be stored while present in either tier, so the tiers
	// stay disjoint). It never evicts — checkpoints hold a profiling
	// phase's worth of states, far under the table bound.
	base *perfTable
	max  int

	// encodeKey scratch: the current key bytes and their hashKey
	// fingerprint, consumed by lookup/store/pend and by the L2 (which
	// shards on the same fingerprint).
	key []byte
	fp  uint64

	// The pending buffer batches L2 publications between period
	// boundaries (see Machine.FlushShared). Keys are copied into the
	// pending arena — the L1 table may compact under eviction while a
	// publication is pending, so the buffer cannot alias it.
	pendArena   []byte
	pendEnds    []int32
	pendFps     []uint64
	pendEntries [][]Perf

	// The counters are atomics because fleet drivers snapshot stats
	// while nodes are mid-run; the table itself is still owned by
	// one Machine (a Machine is not safe for concurrent use).
	hits       atomic.Uint64
	misses     atomic.Uint64
	evictions  atomic.Uint64
	sharedHits atomic.Uint64 // L1 misses served by the shared L2
}

func newSolveCache(max int) *solveCache {
	return &solveCache{max: max}
}

// invalidate drops every entry. Safe on a nil cache.
func (c *solveCache) invalidate() {
	if c == nil {
		return
	}
	c.base = nil
	if c.tab.size() != 0 {
		c.tab.truncate()
	}
}

// reset returns the cache to its just-constructed state — entries
// dropped (capacity kept), all counters zeroed — while retaining the
// key scratch. Pending L2 publications must be flushed by the caller
// first (Machine.Reset does). Safe on nil.
//
//copart:noalloc
func (c *solveCache) reset() {
	if c == nil {
		return
	}
	c.base = nil
	c.tab.truncate()
	c.hits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
	c.sharedHits.Store(0)
}

// pend queues the entry just stored under the scratch key for batched
// L2 publication, self-flushing when the buffer fills between period
// boundaries.
//
//copart:noalloc
func (c *solveCache) pend(entry []Perf) {
	c.pendArena = append(c.pendArena, c.key...)              //copart:allocok amortized append growth; capacity is retained across periods
	c.pendEnds = append(c.pendEnds, int32(len(c.pendArena))) //copart:allocok amortized append growth; capacity is retained across periods
	c.pendFps = append(c.pendFps, c.fp)                      //copart:allocok amortized append growth; capacity is retained across periods
	c.pendEntries = append(c.pendEntries, entry)             //copart:allocok amortized append growth; capacity is retained across periods
	if len(c.pendFps) >= pendFlushAt {
		if SharedSolveCacheEnabled() {
			sharedSolve.storeBatch(c.pendArena, c.pendEnds, c.pendFps, c.pendEntries)
		}
		c.clearPending()
	}
}

// pendFlushAt caps the pending buffer: a control period solves a
// handful of new states, so 64 is reached only by solve-heavy sweeps
// between steps.
const pendFlushAt = 64

// clearPending empties the pending buffer, dropping entry references
// but keeping capacity.
//
//copart:noalloc
func (c *solveCache) clearPending() {
	clear(c.pendEntries)
	c.pendArena = c.pendArena[:0]
	c.pendEnds = c.pendEnds[:0]
	c.pendFps = c.pendFps[:0]
	c.pendEntries = c.pendEntries[:0]
}

// encodeKey writes the exact solver fingerprint into the scratch key —
// the config digest, then per application its resolved-model digest and
// allocation pair — and hashes it once (both tiers consume the same
// fingerprint). digests[i] must be modelDigest of the *resolved*
// models[i] (phases folded); Machine maintains these incrementally so
// the key costs O(apps) fixed-width appends.
//
//copart:noalloc
func (c *solveCache) encodeKey(cfgDigest uint64, digests []uint64, allocs []Alloc) {
	k := c.key[:0]
	k = binary.LittleEndian.AppendUint64(k, cfgDigest)
	k = binary.AppendUvarint(k, uint64(len(digests)))
	for i, d := range digests {
		k = binary.LittleEndian.AppendUint64(k, d)
		// CBMs are short bit masks (a machine has a few dozen ways at
		// most), so the varint form is 1–2 bytes against 8 fixed — the
		// keys both tiers hash and byte-compare on every solve shrink by
		// a third. Varints are prefix-free, so the encoding stays
		// injective.
		k = binary.AppendUvarint(k, allocs[i].CBM)
		k = binary.AppendUvarint(k, uint64(allocs[i].MBALevel))
	}
	c.key = k
	c.fp = hashKey(k)
}

// lookup returns the memoized solve for the key left by encodeKey. The
// returned slice is the cache's own entry: the caller must copy it into
// its destination and never mutate or retain it (solveForInto does
// exactly that), which keeps a hit allocation-free. The encoded key
// stays in the scratch so a following store needs no re-encoding.
//
//copart:noalloc
func (c *solveCache) lookup() ([]Perf, bool) {
	if i := c.tab.find(c.fp, c.key); i >= 0 {
		c.hits.Add(1)
		return c.tab.entries[i], true
	}
	if c.base != nil {
		if i := c.base.find(c.fp, c.key); i >= 0 {
			c.hits.Add(1)
			return c.base.entries[i], true
		}
	}
	c.misses.Add(1)
	return nil, false
}

// store memoizes an immutable entry under the key left by the preceding
// encodeKey, taking ownership of the slice (solveForInto passes a fresh
// copy, possibly shared with the L2). When the table is full a bounded
// batch (max/8) of the oldest entries is evicted instead of dropping
// the whole table — eviction affects only speed and counters, never
// values.
//
//copart:noalloc
func (c *solveCache) store(entry []Perf) {
	if i := c.tab.find(c.fp, c.key); i >= 0 {
		c.tab.entries[i] = entry
		return
	}
	if c.tab.size() >= c.max {
		batch := c.max / 8
		if batch < 1 {
			batch = 1
		}
		c.evictions.Add(uint64(c.tab.evictOldest(batch)))
	}
	c.tab.insert(c.fp, c.key, entry)
}

// CacheStats is a snapshot of one machine's L1 counters. Hits, Misses,
// and Evictions are deterministic for a seeded run even with the shared
// L2 enabled (an L2 hit is adopted into the L1, so the L1 trajectory
// matches a solve-and-store exactly); SharedHits — the portion of
// misses served by the L2 — depends on what the rest of the process
// solved first and is excluded from determinism comparisons.
type CacheStats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	SharedHits uint64
	Entries    int
}

// SolveCacheStats reports the machine's memoization counters (zeroes
// when the cache is disabled) — exposed for tests and benchmarks.
func (m *Machine) SolveCacheStats() (hits, misses uint64, entries int) {
	if m.cache == nil {
		return 0, 0, 0
	}
	return m.cache.hits.Load(), m.cache.misses.Load(), m.cache.entryCount()
}

// entryCount is the total resident entry count across both tiers.
//
//copart:noalloc
func (c *solveCache) entryCount() int {
	n := c.tab.size()
	if c.base != nil {
		n += c.base.size()
	}
	return n
}

// SolveCacheDetail reports the full L1 counter snapshot (zero value
// when the cache is disabled).
func (m *Machine) SolveCacheDetail() CacheStats {
	if m.cache == nil {
		return CacheStats{}
	}
	return CacheStats{
		Hits:       m.cache.hits.Load(),
		Misses:     m.cache.misses.Load(),
		Evictions:  m.cache.evictions.Load(),
		SharedHits: m.cache.sharedHits.Load(),
		Entries:    m.cache.entryCount(),
	}
}
