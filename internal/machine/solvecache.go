package machine

import (
	"encoding/binary"
	"sync/atomic"
)

// defaultSolveCacheEntries bounds the per-machine memoization table.
// The largest in-repo consumer is the ST oracle's exhaustive
// 4-application search (~31k states); when the bound is exceeded a
// bounded batch is evicted (see store), which keeps behaviour
// deterministic (the cache only ever changes speed, never values —
// Solve is a pure function of its inputs).
const defaultSolveCacheEntries = 1 << 15

// solveCache is the per-machine L1: it memoizes SolveFor results keyed
// by an exact binary fingerprint of the machine config, the resolved
// model digests, and the allocations. Because the key covers every
// solver input, a hit is guaranteed bit-identical to recomputation;
// AddApp/RemoveApp/phase flushes (see Machine) only bound staleness and
// memory. Entries are immutable and may be shared with the process-wide
// L2 (sharedcache.go): both tiers hand out slices that callers copy
// from and never mutate.
type solveCache struct {
	entries map[string][]Perf
	max     int
	key     []byte // scratch for the current key

	// interned deduplicates key strings across stores: the map-store form
	// m[string(b)] = v materializes a fresh key string every time, so a
	// fleet node revisiting states it solved in an earlier epoch (or an
	// L2-warm node adopting entries) would pay one string allocation per
	// store forever. The intern table survives invalidate/reset — it
	// holds strings, not results, so persistence affects allocations
	// only, never values or counters.
	interned map[string]string

	// pendKeys/pendEntries buffer L2 publications between period
	// boundaries (see Machine.FlushShared): keys are interned strings, so
	// the buffer itself allocates only amortized append growth.
	pendKeys    []string
	pendEntries [][]Perf

	// The counters are atomics because fleet drivers snapshot stats
	// while nodes are mid-run; the maps themselves are still owned by
	// one Machine (a Machine is not safe for concurrent use).
	hits       atomic.Uint64
	misses     atomic.Uint64
	evictions  atomic.Uint64
	sharedHits atomic.Uint64 // L1 misses served by the shared L2
}

// internMax bounds the intern table; at the bound it is cleared
// wholesale (keeping its buckets) — strictly a memory/alloc trade, the
// interned strings carry no cached results.
const internMax = 1 << 16

func newSolveCache(max int) *solveCache {
	return &solveCache{
		entries:  make(map[string][]Perf),
		interned: make(map[string]string),
		max:      max,
	}
}

// invalidate drops every entry. Safe on a nil cache.
func (c *solveCache) invalidate() {
	if c == nil || len(c.entries) == 0 {
		return
	}
	clear(c.entries)
}

// reset returns the cache to its just-constructed state — entries
// cleared (buckets kept), all counters zeroed — while retaining the
// intern table and key scratch, whose contents are config-keyed strings
// that stay valid across Machine.Reset. Pending L2 publications must be
// flushed by the caller first (Machine.Reset does). Safe on nil.
//
//copart:noalloc
func (c *solveCache) reset() {
	if c == nil {
		return
	}
	clear(c.entries)
	c.hits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
	c.sharedHits.Store(0)
}

// intern returns the canonical string for the scratch key, allocating
// it at most once per distinct state per table generation.
//
//copart:noalloc
func (c *solveCache) intern() string {
	if s, ok := c.interned[string(c.key)]; ok {
		return s
	}
	if len(c.interned) >= internMax {
		clear(c.interned)
	}
	s := string(c.key) //copart:allocok first sighting of a state: interned once, reused forever
	c.interned[s] = s
	return s
}

// pend queues an entry for batched L2 publication under the interned
// key, self-flushing when the buffer fills between period boundaries.
//
//copart:noalloc
func (c *solveCache) pend(key string, entry []Perf) {
	c.pendKeys = append(c.pendKeys, key)         //copart:allocok amortized append growth; capacity is retained across periods
	c.pendEntries = append(c.pendEntries, entry) //copart:allocok amortized append growth; capacity is retained across periods
	if len(c.pendKeys) >= pendFlushAt {
		if SharedSolveCacheEnabled() {
			sharedSolve.storeBatch(c.pendKeys, c.pendEntries)
		}
		c.clearPending()
	}
}

// pendFlushAt caps the pending buffer: a control period solves a
// handful of new states, so 64 is reached only by solve-heavy sweeps
// between steps.
const pendFlushAt = 64

// clearPending empties the pending buffer, dropping entry references
// but keeping capacity.
//
//copart:noalloc
func (c *solveCache) clearPending() {
	for i := range c.pendEntries {
		c.pendEntries[i] = nil
	}
	c.pendKeys = c.pendKeys[:0]
	c.pendEntries = c.pendEntries[:0]
}

// encodeKey writes the exact solver fingerprint into the scratch key:
// the config digest, then per application its resolved-model digest and
// allocation pair. digests[i] must be modelDigest of the *resolved*
// models[i] (phases folded); Machine maintains these incrementally so
// the key costs O(apps) fixed-width appends.
//
//copart:noalloc
func (c *solveCache) encodeKey(cfgDigest uint64, digests []uint64, allocs []Alloc) {
	k := c.key[:0]
	k = binary.LittleEndian.AppendUint64(k, cfgDigest)
	k = binary.AppendUvarint(k, uint64(len(digests)))
	for i, d := range digests {
		k = binary.LittleEndian.AppendUint64(k, d)
		k = binary.LittleEndian.AppendUint64(k, allocs[i].CBM)
		k = binary.AppendUvarint(k, uint64(allocs[i].MBALevel))
	}
	c.key = k
}

// lookup returns the memoized solve for the key left by encodeKey. The
// returned slice is the cache's own entry: the caller must copy it into
// its destination and never mutate or retain it (solveForInto does
// exactly that), which keeps a hit allocation-free. The encoded key
// stays in the scratch so a following store needs no re-encoding.
//
//copart:noalloc
func (c *solveCache) lookup() ([]Perf, bool) {
	cached, ok := c.entries[string(c.key)]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return cached, true
}

// store memoizes an immutable entry under the key left by the preceding
// lookup, taking ownership of the slice (solveForInto passes a fresh
// copy, possibly shared with the L2), and returns the interned key
// string for batched L2 publication. When the table is full a bounded
// batch (max/8) is evicted instead of dropping the whole table — Go's
// randomized map iteration picks the victims, which is fine because
// eviction affects only speed and counters, never values.
//
//copart:noalloc
func (c *solveCache) store(entry []Perf) string {
	if len(c.entries) >= c.max {
		if _, exists := c.entries[string(c.key)]; !exists {
			batch := c.max / 8
			if batch < 1 {
				batch = 1
			}
			evicted := uint64(0)
			for k := range c.entries {
				delete(c.entries, k)
				if evicted++; evicted >= uint64(batch) {
					break
				}
			}
			c.evictions.Add(evicted)
		}
	}
	key := c.intern()
	c.entries[key] = entry
	return key
}

// CacheStats is a snapshot of one machine's L1 counters. Hits, Misses,
// and Evictions are deterministic for a seeded run even with the shared
// L2 enabled (an L2 hit is adopted into the L1, so the L1 trajectory
// matches a solve-and-store exactly); SharedHits — the portion of
// misses served by the L2 — depends on what the rest of the process
// solved first and is excluded from determinism comparisons.
type CacheStats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	SharedHits uint64
	Entries    int
}

// SolveCacheStats reports the machine's memoization counters (zeroes
// when the cache is disabled) — exposed for tests and benchmarks.
func (m *Machine) SolveCacheStats() (hits, misses uint64, entries int) {
	if m.cache == nil {
		return 0, 0, 0
	}
	return m.cache.hits.Load(), m.cache.misses.Load(), len(m.cache.entries)
}

// SolveCacheDetail reports the full L1 counter snapshot (zero value
// when the cache is disabled).
func (m *Machine) SolveCacheDetail() CacheStats {
	if m.cache == nil {
		return CacheStats{}
	}
	return CacheStats{
		Hits:       m.cache.hits.Load(),
		Misses:     m.cache.misses.Load(),
		Evictions:  m.cache.evictions.Load(),
		SharedHits: m.cache.sharedHits.Load(),
		Entries:    len(m.cache.entries),
	}
}
