package machine

import (
	"reflect"
	"testing"
	"time"
)

// twinMachines returns one memoizing and one bare machine with the same
// configuration and the standard 4-application test mix added to both.
func twinMachines(t *testing.T, cfg Config) (cached, bare *Machine, models []AppModel) {
	t.Helper()
	var err error
	cached, err = New(cfg, WithSolveCache())
	if err != nil {
		t.Fatal(err)
	}
	bare, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	models = []AppModel{
		llcSensitiveModel(), bwSensitiveModel(), dualSensitiveModel(), insensitiveModel(),
	}
	for i := range models {
		models[i].Name = string(rune('a' + i))
		if err := cached.AddApp(models[i]); err != nil {
			t.Fatal(err)
		}
		if err := bare.AddApp(models[i]); err != nil {
			t.Fatal(err)
		}
	}
	return cached, bare, models
}

// TestSolveCacheTransparent checks the memoized solver is bit-identical
// to the bare one across a sweep of allocations, including repeats that
// exercise cache hits.
func TestSolveCacheTransparent(t *testing.T) {
	cfg := DefaultConfig()
	cached, bare, models := twinMachines(t, cfg)
	sweep := [][]int{{3, 3, 3, 2}, {5, 2, 2, 2}, {2, 2, 2, 5}, {3, 3, 3, 2}, {5, 2, 2, 2}}
	levels := []int{100, 50, 30, 100, 50}
	for si, counts := range sweep {
		masks, err := AssignContiguousWays(counts, 0, cfg.LLCWays)
		if err != nil {
			t.Fatal(err)
		}
		for i := range models {
			al := Alloc{CBM: masks[i], MBALevel: levels[si]}
			if err := cached.SetAllocation(models[i].Name, al); err != nil {
				t.Fatal(err)
			}
			if err := bare.SetAllocation(models[i].Name, al); err != nil {
				t.Fatal(err)
			}
		}
		got, err := cached.Solve()
		if err != nil {
			t.Fatal(err)
		}
		want, err := bare.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("sweep %d: cached solve diverged:\ncached: %+v\nbare:   %+v", si, got, want)
		}
	}
	hits, misses, entries := cached.SolveCacheStats()
	if hits == 0 {
		t.Error("sweep repeats states but the cache recorded no hits")
	}
	if misses == 0 || entries == 0 {
		t.Errorf("cache recorded %d misses, %d entries; want both > 0", misses, entries)
	}
}

// TestSolveCacheReturnsFreshSlices checks a cache hit cannot alias the
// stored entry: callers may retain and mutate the returned perfs.
func TestSolveCacheReturnsFreshSlices(t *testing.T) {
	cached, _, _ := twinMachines(t, DefaultConfig())
	first, err := cached.Solve()
	if err != nil {
		t.Fatal(err)
	}
	second, err := cached.Solve() // cache hit
	if err != nil {
		t.Fatal(err)
	}
	if &first[0] == &second[0] {
		t.Fatal("cache hit returned the same backing array twice")
	}
	saved := second[0]
	first[0].IPS = -1
	if second[0] != saved {
		t.Fatal("mutating one returned slice changed another")
	}
}

// TestSolveCacheInvalidation checks the membership-change hooks drop all
// entries: stale results must be impossible after AddApp/RemoveApp.
func TestSolveCacheInvalidation(t *testing.T) {
	cached, _, models := twinMachines(t, DefaultConfig())
	if _, err := cached.Solve(); err != nil {
		t.Fatal(err)
	}
	if _, _, entries := cached.SolveCacheStats(); entries == 0 {
		t.Fatal("solve did not populate the cache")
	}
	if err := cached.RemoveApp(models[3].Name); err != nil {
		t.Fatal(err)
	}
	if _, _, entries := cached.SolveCacheStats(); entries != 0 {
		t.Errorf("RemoveApp left %d cache entries", entries)
	}
	if _, err := cached.Solve(); err != nil {
		t.Fatal(err)
	}
	newcomer := insensitiveModel()
	newcomer.Name = "e"
	if err := cached.AddApp(newcomer); err != nil {
		t.Fatal(err)
	}
	if _, _, entries := cached.SolveCacheStats(); entries != 0 {
		t.Errorf("AddApp left %d cache entries", entries)
	}
}

// TestSolveCachePhased checks time-varying models stay correct under
// memoization: advancing time across a phase boundary must not serve the
// previous phase's solution. The cached machine is compared against a
// bare machine stepped identically.
func TestSolveCachePhased(t *testing.T) {
	cfg := DefaultConfig()
	phased := llcSensitiveModel()
	phased.Name = "p"
	phased.Phases = []ModelPhase{
		{Duration: 2 * time.Second},
		{Duration: 2 * time.Second, AccScale: 3},
	}
	other := bwSensitiveModel()
	other.Name = "q"

	cached, err := New(cfg, WithSolveCache())
	if err != nil {
		t.Fatal(err)
	}
	bare, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []*Machine{cached, bare} {
		if err := m.AddApp(phased); err != nil {
			t.Fatal(err)
		}
		if err := m.AddApp(other); err != nil {
			t.Fatal(err)
		}
	}
	for step := 0; step < 5; step++ {
		got, err := cached.Solve()
		if err != nil {
			t.Fatal(err)
		}
		want, err := bare.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d: phased cached solve diverged:\ncached: %+v\nbare:   %+v", step, got, want)
		}
		if err := cached.Step(time.Second); err != nil {
			t.Fatal(err)
		}
		if err := bare.Step(time.Second); err != nil {
			t.Fatal(err)
		}
	}
}
