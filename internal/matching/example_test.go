package matching_test

import (
	"fmt"

	"repro/internal/matching"
)

func ExampleSolve() {
	// The §5.4.2 example: both hospitals prefer resident 0; resident 0
	// prefers hospital 0, resident 1 prefers hospital 1. The crossed
	// assignment would be unstable; deferred acceptance finds the stable
	// one.
	in := matching.Instance{
		Capacity:      []int{1, 1},
		HospitalPrefs: [][]int{{0, 1}, {0, 1}},
		ResidentPrefs: [][]int{{0, 1}, {1, 0}},
	}
	m, _ := matching.Solve(in)
	fmt.Println(m.HospitalOf)
	bp, _ := matching.FindBlockingPair(in, m)
	fmt.Println("stable:", bp == nil)
	// Output:
	// [0 1]
	// stable: true
}
