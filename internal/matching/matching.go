// Package matching implements the Hospitals/Residents (HR) stable-matching
// problem that CoPart's resource-allocation step is formulated as (§5.4.2).
//
// In the HR problem, each of H hospitals has a capacity and a preference
// ranking over residents; each of R residents ranks hospitals. A matching
// assigns residents to hospitals within capacity. A matching is stable
// when it admits no blocking pair: a mutually acceptable (hospital,
// resident) pair where the resident prefers the hospital to their current
// assignment and the hospital either has a free slot or prefers the
// resident to one it currently holds. Gale & Shapley's deferred-acceptance
// algorithm finds a stable matching in O(H·R); the resident-proposing
// variant implemented here yields the resident-optimal stable matching.
//
// CoPart instantiates this with resource types (LLC / MBA / ANY suppliers)
// as hospitals — capacity being the number of producer applications — and
// resource-demanding applications as residents, with hospital preferences
// ordered by application slowdown. The specialized allocator lives in
// internal/core; this package provides the general solver and the
// stability checker used to validate it.
package matching

import "fmt"

// Instance is an HR problem instance. Hospitals and residents are indexed
// densely from 0. A participant's preference list contains only the
// counterparts it finds acceptable, most preferred first.
type Instance struct {
	// Capacity[h] is the number of residents hospital h can admit.
	Capacity []int
	// HospitalPrefs[h] ranks resident indices, most preferred first.
	HospitalPrefs [][]int
	// ResidentPrefs[r] ranks hospital indices, most preferred first.
	ResidentPrefs [][]int
}

// Validate checks index ranges, capacities, and duplicate-free preference
// lists.
func (in Instance) Validate() error {
	nH, nR := len(in.Capacity), len(in.ResidentPrefs)
	if len(in.HospitalPrefs) != nH {
		return fmt.Errorf("matching: %d capacities but %d hospital preference lists",
			nH, len(in.HospitalPrefs))
	}
	for h, c := range in.Capacity {
		if c < 0 {
			return fmt.Errorf("matching: hospital %d has negative capacity %d", h, c)
		}
	}
	for h, prefs := range in.HospitalPrefs {
		seen := make(map[int]bool, len(prefs))
		for _, r := range prefs {
			if r < 0 || r >= nR {
				return fmt.Errorf("matching: hospital %d ranks unknown resident %d", h, r)
			}
			if seen[r] {
				return fmt.Errorf("matching: hospital %d ranks resident %d twice", h, r)
			}
			seen[r] = true
		}
	}
	for r, prefs := range in.ResidentPrefs {
		seen := make(map[int]bool, len(prefs))
		for _, h := range prefs {
			if h < 0 || h >= nH {
				return fmt.Errorf("matching: resident %d ranks unknown hospital %d", r, h)
			}
			if seen[h] {
				return fmt.Errorf("matching: resident %d ranks hospital %d twice", r, h)
			}
			seen[h] = true
		}
	}
	return nil
}

// Matching maps each resident to a hospital index, or -1 when unmatched.
type Matching struct {
	HospitalOf []int
}

// Assigned returns the residents assigned to hospital h, in no particular
// order.
func (m Matching) Assigned(h int) []int {
	var out []int
	for r, hh := range m.HospitalOf {
		if hh == h {
			out = append(out, r)
		}
	}
	return out
}

// rankTable builds rank[i][j] = position of j in prefs[i], or -1 when j is
// unacceptable to i.
func rankTable(prefs [][]int, nOther int) [][]int {
	table := make([][]int, len(prefs))
	for i, list := range prefs {
		row := make([]int, nOther)
		for j := range row {
			row[j] = -1
		}
		for pos, j := range list {
			row[j] = pos
		}
		table[i] = row
	}
	return table
}

// Solve runs resident-proposing deferred acceptance and returns the
// resident-optimal stable matching. A pair is only ever matched when each
// side appears on the other's preference list.
func Solve(in Instance) (Matching, error) {
	if err := in.Validate(); err != nil {
		return Matching{}, err
	}
	nH, nR := len(in.Capacity), len(in.ResidentPrefs)
	hospRank := rankTable(in.HospitalPrefs, nR)

	hospitalOf := make([]int, nR)
	nextChoice := make([]int, nR) // next index into ResidentPrefs[r] to try
	for r := range hospitalOf {
		hospitalOf[r] = -1
	}
	held := make([][]int, nH) // residents currently held by each hospital

	free := make([]int, 0, nR)
	for r := 0; r < nR; r++ {
		free = append(free, r)
	}
	for len(free) > 0 {
		r := free[len(free)-1]
		free = free[:len(free)-1]
		prefs := in.ResidentPrefs[r]
		for nextChoice[r] < len(prefs) {
			h := prefs[nextChoice[r]]
			nextChoice[r]++
			if hospRank[h][r] < 0 {
				continue // h does not accept r at all
			}
			if in.Capacity[h] == 0 {
				continue
			}
			if len(held[h]) < in.Capacity[h] {
				held[h] = append(held[h], r)
				hospitalOf[r] = h
				break
			}
			// Full: find the worst currently-held resident.
			worstIdx, worst := 0, held[h][0]
			for i, rr := range held[h][1:] {
				if hospRank[h][rr] > hospRank[h][worst] {
					worstIdx, worst = i+1, rr
				}
			}
			if hospRank[h][r] < hospRank[h][worst] {
				// h prefers r: bump the worst resident back to free.
				held[h][worstIdx] = r
				hospitalOf[r] = h
				hospitalOf[worst] = -1
				free = append(free, worst)
				break
			}
			// Rejected; try r's next choice.
		}
	}
	return Matching{HospitalOf: hospitalOf}, nil
}

// BlockingPair identifies an instability in a matching.
type BlockingPair struct {
	Hospital, Resident int
}

// FindBlockingPair returns a blocking pair of the matching, or nil when
// the matching is stable. It also reports matchings that are structurally
// invalid (capacity overflow, match not on preference lists) as errors.
func FindBlockingPair(in Instance, m Matching) (*BlockingPair, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	nH, nR := len(in.Capacity), len(in.ResidentPrefs)
	if len(m.HospitalOf) != nR {
		return nil, fmt.Errorf("matching: matching covers %d residents, want %d", len(m.HospitalOf), nR)
	}
	hospRank := rankTable(in.HospitalPrefs, nR)
	resRank := rankTable(in.ResidentPrefs, nH)
	load := make([]int, nH)
	for r, h := range m.HospitalOf {
		if h == -1 {
			continue
		}
		if h < 0 || h >= nH {
			return nil, fmt.Errorf("matching: resident %d matched to unknown hospital %d", r, h)
		}
		if hospRank[h][r] < 0 || resRank[r][h] < 0 {
			return nil, fmt.Errorf("matching: pair (%d,%d) not mutually acceptable", h, r)
		}
		load[h]++
	}
	for h, l := range load {
		if l > in.Capacity[h] {
			return nil, fmt.Errorf("matching: hospital %d over capacity (%d > %d)", h, l, in.Capacity[h])
		}
	}
	// worst[h] = rank of the least-preferred resident h holds (only
	// meaningful when h is at capacity).
	worst := make([]int, nH)
	for h := range worst {
		worst[h] = -1
	}
	for r, h := range m.HospitalOf {
		if h == -1 {
			continue
		}
		if hospRank[h][r] > worst[h] {
			worst[h] = hospRank[h][r]
		}
	}
	for r := 0; r < nR; r++ {
		cur := m.HospitalOf[r]
		for _, h := range in.ResidentPrefs[r] {
			if cur != -1 && resRank[r][h] >= resRank[r][cur] {
				break // r does not prefer h (prefs are ranked; stop at current)
			}
			if hospRank[h][r] < 0 || in.Capacity[h] == 0 {
				continue
			}
			if load[h] < in.Capacity[h] || hospRank[h][r] < worst[h] {
				return &BlockingPair{Hospital: h, Resident: r}, nil
			}
		}
	}
	return nil, nil
}
