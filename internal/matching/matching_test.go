package matching

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	ok := Instance{
		Capacity:      []int{1, 2},
		HospitalPrefs: [][]int{{0, 1}, {1, 0}},
		ResidentPrefs: [][]int{{0, 1}, {1}},
	}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []Instance{
		{Capacity: []int{1}, HospitalPrefs: [][]int{{0}, {0}}, ResidentPrefs: [][]int{{0}}},
		{Capacity: []int{-1}, HospitalPrefs: [][]int{{0}}, ResidentPrefs: [][]int{{0}}},
		{Capacity: []int{1}, HospitalPrefs: [][]int{{5}}, ResidentPrefs: [][]int{{0}}},
		{Capacity: []int{1}, HospitalPrefs: [][]int{{0, 0}}, ResidentPrefs: [][]int{{0}}},
		{Capacity: []int{1}, HospitalPrefs: [][]int{{0}}, ResidentPrefs: [][]int{{7}}},
		{Capacity: []int{1}, HospitalPrefs: [][]int{{0}}, ResidentPrefs: [][]int{{0, 0}}},
	}
	for i, bad := range bads {
		if err := bad.Validate(); err == nil {
			t.Errorf("instance %d should be invalid", i)
		}
	}
}

func TestSolveTextbook(t *testing.T) {
	// The classic 2-hospital 2-resident crossing-preferences example from
	// §5.4.2 of the paper: hA and hB prefer sA; sA prefers hA, sB prefers
	// hB. Stable matching: (hA,sA), (hB,sB).
	in := Instance{
		Capacity:      []int{1, 1},
		HospitalPrefs: [][]int{{0, 1}, {0, 1}},
		ResidentPrefs: [][]int{{0, 1}, {1, 0}},
	}
	m, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if m.HospitalOf[0] != 0 || m.HospitalOf[1] != 1 {
		t.Errorf("matching %v, want [0 1]", m.HospitalOf)
	}
	bp, err := FindBlockingPair(in, m)
	if err != nil {
		t.Fatal(err)
	}
	if bp != nil {
		t.Errorf("stable matching flagged with blocking pair %+v", bp)
	}
}

func TestSolveCapacity(t *testing.T) {
	// One hospital with capacity 2 takes its two most preferred residents.
	in := Instance{
		Capacity:      []int{2},
		HospitalPrefs: [][]int{{2, 0, 1}},
		ResidentPrefs: [][]int{{0}, {0}, {0}},
	}
	m, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if m.HospitalOf[2] != 0 || m.HospitalOf[0] != 0 {
		t.Errorf("matching %v: hospital should hold residents 2 and 0", m.HospitalOf)
	}
	if m.HospitalOf[1] != -1 {
		t.Errorf("resident 1 should be unmatched, got %d", m.HospitalOf[1])
	}
	if got := len(m.Assigned(0)); got != 2 {
		t.Errorf("Assigned(0) has %d residents", got)
	}
}

func TestSolveUnacceptablePairsNeverMatch(t *testing.T) {
	// Hospital 0 does not rank resident 0 at all.
	in := Instance{
		Capacity:      []int{1},
		HospitalPrefs: [][]int{{}},
		ResidentPrefs: [][]int{{0}},
	}
	m, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if m.HospitalOf[0] != -1 {
		t.Error("unacceptable pair was matched")
	}
}

func TestSolveZeroCapacity(t *testing.T) {
	in := Instance{
		Capacity:      []int{0},
		HospitalPrefs: [][]int{{0}},
		ResidentPrefs: [][]int{{0}},
	}
	m, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if m.HospitalOf[0] != -1 {
		t.Error("zero-capacity hospital admitted a resident")
	}
}

func TestSolveBumping(t *testing.T) {
	// Resident 1 proposes after resident 0 holds the slot but is
	// preferred: 0 gets bumped and falls to hospital 1.
	in := Instance{
		Capacity:      []int{1, 1},
		HospitalPrefs: [][]int{{1, 0}, {0, 1}},
		ResidentPrefs: [][]int{{0, 1}, {0}},
	}
	m, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if m.HospitalOf[1] != 0 || m.HospitalOf[0] != 1 {
		t.Errorf("matching %v, want resident1→h0, resident0→h1", m.HospitalOf)
	}
}

func TestFindBlockingPairDetectsInstability(t *testing.T) {
	in := Instance{
		Capacity:      []int{1, 1},
		HospitalPrefs: [][]int{{0, 1}, {0, 1}},
		ResidentPrefs: [][]int{{0, 1}, {1, 0}},
	}
	// The crossed matching (hA,sB),(hB,sA) is unstable.
	bad := Matching{HospitalOf: []int{1, 0}}
	bp, err := FindBlockingPair(in, bad)
	if err != nil {
		t.Fatal(err)
	}
	if bp == nil {
		t.Fatal("crossed matching should have a blocking pair")
	}
	if bp.Hospital != 0 || bp.Resident != 0 {
		t.Errorf("blocking pair %+v, want (0,0)", bp)
	}
}

func TestFindBlockingPairRejectsMalformed(t *testing.T) {
	in := Instance{
		Capacity:      []int{1},
		HospitalPrefs: [][]int{{0, 1}},
		ResidentPrefs: [][]int{{0}, {0}},
	}
	if _, err := FindBlockingPair(in, Matching{HospitalOf: []int{0}}); err == nil {
		t.Error("wrong matching length should error")
	}
	if _, err := FindBlockingPair(in, Matching{HospitalOf: []int{0, 0}}); err == nil {
		t.Error("capacity overflow should error")
	}
	if _, err := FindBlockingPair(in, Matching{HospitalOf: []int{9, -1}}); err == nil {
		t.Error("unknown hospital should error")
	}
	// Resident 1 matched to hospital 0, but hospital 0 ranks resident 1 —
	// resident 1 has hospital 0 on its list, so this one is fine; instead
	// match a pair that is not mutually acceptable.
	in2 := Instance{
		Capacity:      []int{1},
		HospitalPrefs: [][]int{{}},
		ResidentPrefs: [][]int{{0}},
	}
	if _, err := FindBlockingPair(in2, Matching{HospitalOf: []int{0}}); err == nil {
		t.Error("non-acceptable match should error")
	}
}

// randomInstance builds a random HR instance with complete or truncated
// preference lists.
func randomInstance(rng *rand.Rand, nH, nR int) Instance {
	in := Instance{
		Capacity:      make([]int, nH),
		HospitalPrefs: make([][]int, nH),
		ResidentPrefs: make([][]int, nR),
	}
	for h := 0; h < nH; h++ {
		in.Capacity[h] = rng.Intn(3)
		perm := rng.Perm(nR)
		in.HospitalPrefs[h] = perm[:rng.Intn(nR+1)]
	}
	for r := 0; r < nR; r++ {
		perm := rng.Perm(nH)
		in.ResidentPrefs[r] = perm[:rng.Intn(nH+1)]
	}
	return in
}

// Property: Solve always produces a stable matching on random instances.
func TestSolveStabilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nH := rng.Intn(5) + 1
		nR := rng.Intn(8) + 1
		in := randomInstance(rng, nH, nR)
		m, err := Solve(in)
		if err != nil {
			return false
		}
		bp, err := FindBlockingPair(in, m)
		if err != nil {
			return false
		}
		return bp == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: with complete preference lists and total capacity ≥ residents,
// everyone is matched (rural hospitals theorem corollary).
func TestSolveCompletenessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nH := rng.Intn(4) + 1
		nR := rng.Intn(6) + 1
		in := Instance{
			Capacity:      make([]int, nH),
			HospitalPrefs: make([][]int, nH),
			ResidentPrefs: make([][]int, nR),
		}
		per := (nR + nH - 1) / nH
		for h := 0; h < nH; h++ {
			in.Capacity[h] = per
			in.HospitalPrefs[h] = rng.Perm(nR)
		}
		for r := 0; r < nR; r++ {
			in.ResidentPrefs[r] = rng.Perm(nH)
		}
		m, err := Solve(in)
		if err != nil {
			return false
		}
		for _, h := range m.HospitalOf {
			if h == -1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
