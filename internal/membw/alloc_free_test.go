package membw

import (
	"math/rand"
	"testing"
)

// TestAllocateIntoMatchesAllocate checks that the allocation-free entry
// point is behaviorally identical to the original Allocate across random
// demand sets, and that reusing one Result across calls cannot leak
// state from a previous (larger) call into a later one.
func TestAllocateIntoMatchesAllocate(t *testing.T) {
	a := testArbiter(t)
	rng := rand.New(rand.NewSource(7))
	var res Result
	for iter := 0; iter < 500; iter++ {
		n := 1 + rng.Intn(6)
		demands := make([]Demand, n)
		for i := range demands {
			demands[i] = Demand{
				Bytes:    rng.Float64() * 12 * GB,
				MBALevel: ClampLevel(10 + rng.Intn(10)*10),
				Cores:    1 + rng.Intn(4),
			}
		}
		want, err := a.Allocate(demands)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.AllocateInto(&res, demands); err != nil {
			t.Fatal(err)
		}
		if len(res.Grants) != n || len(res.Caps) != n {
			t.Fatalf("iter %d: result sized %d/%d, want %d", iter, len(res.Grants), len(res.Caps), n)
		}
		for i := range demands {
			if res.Grants[i] != want.Grants[i] {
				t.Fatalf("iter %d app %d: grant %v != %v", iter, i, res.Grants[i], want.Grants[i])
			}
			if res.Caps[i] != want.Caps[i] {
				t.Fatalf("iter %d app %d: cap %v != %v", iter, i, res.Caps[i], want.Caps[i])
			}
		}
		if res.Utilization != want.Utilization || res.Stretch != want.Stretch {
			t.Fatalf("iter %d: util/stretch %v/%v != %v/%v",
				iter, res.Utilization, res.Stretch, want.Utilization, want.Stretch)
		}
	}
}

// TestAllocateIntoNoAllocs pins the point of the Into variant: after the
// first call sizes the scratch, repeated allocations are heap-free.
func TestAllocateIntoNoAllocs(t *testing.T) {
	a := testArbiter(t)
	demands := []Demand{
		{Bytes: 9 * GB, MBALevel: 100, Cores: 4},
		{Bytes: 6 * GB, MBALevel: 50, Cores: 4},
		{Bytes: 3 * GB, MBALevel: 30, Cores: 4},
		{Bytes: 1 * GB, MBALevel: 10, Cores: 4},
	}
	var res Result
	if err := a.AllocateInto(&res, demands); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		if err := a.AllocateInto(&res, demands); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("AllocateInto allocates %.1f times per call after warm-up, want 0", avg)
	}
}
