package membw_test

import (
	"fmt"

	"repro/internal/membw"
)

func ExampleArbiter_Allocate() {
	a, _ := membw.New(membw.Config{
		TotalBandwidth: 28e9,
		PerCoreCap:     9e9,
	})
	// Two heavy streamers and one light app: the light demand is fully
	// served; the heavies split what remains of the 28 GB/s budget.
	res, _ := a.Allocate([]membw.Demand{
		{Bytes: 4e9, MBALevel: 100, Cores: 4},
		{Bytes: 30e9, MBALevel: 100, Cores: 4},
		{Bytes: 30e9, MBALevel: 100, Cores: 4},
	})
	for i, g := range res.Grants {
		fmt.Printf("app%d: %.0f GB/s\n", i, g/1e9)
	}
	// Output:
	// app0: 4 GB/s
	// app1: 12 GB/s
	// app2: 12 GB/s
}
