// Package membw models DRAM bandwidth sharing under Intel Memory Bandwidth
// Allocation (MBA).
//
// MBA is a per-core throttle on the traffic between the L2 and the LLC
// (§2.2 of the paper): each CLOS is assigned a level from 10 % to 100 % in
// steps of 10 %, and lower levels insert delays that cap how much memory
// traffic the CLOS's cores can generate. The DRAM channels behind the LLC
// additionally impose a shared global budget (the paper's machine measures
// ~28 GB/s with STREAM).
//
// The arbiter in this package computes, for a set of applications with
// given traffic demands and MBA levels, the bandwidth each actually
// receives: each demand is first clipped by its MBA cap, and the clipped
// demands then share the global budget max–min fairly (water-filling).
// A congestion factor stretches memory latency when the bus saturates,
// which is what makes *unpartitioned* consolidation unfair in the first
// place.
package membw

import (
	"errors"
	"fmt"
	"math"
)

// MinLevel and MaxLevel bound the MBA levels supported by the hardware,
// and Granularity is the step (Table 1 discussion: 10 %..100 % by 10).
const (
	MinLevel    = 10
	MaxLevel    = 100
	Granularity = 10
)

// ValidateLevel checks that level is a legal MBA setting.
func ValidateLevel(level int) error {
	if level < MinLevel || level > MaxLevel || level%Granularity != 0 {
		return fmt.Errorf("membw: invalid MBA level %d (must be %d..%d step %d)",
			level, MinLevel, MaxLevel, Granularity)
	}
	return nil
}

// ClampLevel rounds level to the nearest legal setting.
func ClampLevel(level int) int {
	if level < MinLevel {
		return MinLevel
	}
	if level > MaxLevel {
		return MaxLevel
	}
	// Round to the granularity, ties upward (hardware rounds up requests).
	r := (level + Granularity/2) / Granularity * Granularity
	if r < MinLevel {
		r = MinLevel
	}
	if r > MaxLevel {
		r = MaxLevel
	}
	return r
}

// Config parameterizes the arbiter.
type Config struct {
	// TotalBandwidth is the DRAM budget in bytes/s (the paper: ~28 GB/s).
	TotalBandwidth float64
	// PerCoreCap is the maximum traffic one core can generate at MBA 100 %,
	// in bytes/s. The MBA cap of an application is
	// Curve(level) × PerCoreCap × cores.
	PerCoreCap float64
	// Curve maps an MBA level to the fraction of PerCoreCap permitted.
	// Nil selects the default curve. Real MBA throttling is roughly — but
	// not exactly — linear in the level; the default applies a mild
	// super-linear shape at low levels matching published measurements
	// (low levels throttle slightly harder than proportionally).
	//
	// Functions cannot be serialized, so state snapshots exclude the
	// curve and refuse machines that set a custom one.
	Curve func(level int) float64 `json:"-"`
	// CongestionK and CongestionP shape the latency-stretch factor
	// 1 + K·ρ^P at bus utilization ρ. Zero K disables congestion.
	CongestionK float64
	CongestionP float64
}

// DefaultCurve is the default MBA level→fraction mapping.
func DefaultCurve(level int) float64 {
	f := float64(level) / 100
	// Mild superlinearity: 10 % level delivers ~7 % of peak traffic.
	return math.Pow(f, 1.15)
}

// Validate checks arbiter parameters.
func (c Config) Validate() error {
	if c.TotalBandwidth <= 0 {
		return fmt.Errorf("membw: non-positive total bandwidth %v", c.TotalBandwidth)
	}
	if c.PerCoreCap <= 0 {
		return fmt.Errorf("membw: non-positive per-core cap %v", c.PerCoreCap)
	}
	if c.CongestionK < 0 || c.CongestionP < 0 {
		return fmt.Errorf("membw: negative congestion parameters k=%v p=%v", c.CongestionK, c.CongestionP)
	}
	return nil
}

// Demand describes one application's bandwidth request.
type Demand struct {
	Bytes    float64 // unconstrained traffic demand in bytes/s (≥ 0)
	MBALevel int     // assigned MBA level
	Cores    int     // cores allocated to the application (≥ 1)
}

// Result is the arbiter's outcome for a set of demands.
type Result struct {
	// Grants[i] is the bandwidth application i actually receives.
	Grants []float64
	// Caps[i] is application i's MBA cap (before the shared budget).
	Caps []float64
	// Utilization is Σgrants / TotalBandwidth, in [0, 1].
	Utilization float64
	// Stretch is the congestion latency multiplier, ≥ 1.
	Stretch float64
}

// Arbiter shares the DRAM budget across applications.
//
// An Arbiter is not safe for concurrent use: the allocation-free entry
// points (AllocateInto, AllocateCapped) reuse internal scratch buffers.
// Give each concurrent solver its own Arbiter (machine.Machine does).
type Arbiter struct {
	cfg   Config
	curve func(level int) float64

	// scratch for the allocation-free paths.
	wants  []float64
	caps   []float64
	active []int
}

// New creates an Arbiter.
func New(cfg Config) (*Arbiter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	curve := cfg.Curve
	if curve == nil {
		curve = DefaultCurve
	}
	return &Arbiter{cfg: cfg, curve: curve}, nil
}

// Cap returns the MBA traffic cap for an application with the given level
// and core count.
func (a *Arbiter) Cap(level, cores int) (float64, error) {
	if err := ValidateLevel(level); err != nil {
		return 0, err
	}
	if cores < 1 {
		return 0, fmt.Errorf("membw: invalid core count %d", cores)
	}
	return a.curve(level) * a.cfg.PerCoreCap * float64(cores), nil
}

// TotalBandwidth exposes the configured DRAM budget.
func (a *Arbiter) TotalBandwidth() float64 { return a.cfg.TotalBandwidth }

// Allocate runs the arbitration. It returns an error on malformed demands.
func (a *Arbiter) Allocate(demands []Demand) (Result, error) {
	var res Result
	if err := a.AllocateInto(&res, demands); err != nil {
		return Result{}, err
	}
	return res, nil
}

// AllocateInto is Allocate without per-call allocations: res's Grants
// and Caps slices are reused when their capacity suffices, and the
// intermediate buffers live on the Arbiter. The solver's fixed-point
// loop calls this every round.
//
//copart:noalloc
func (a *Arbiter) AllocateInto(res *Result, demands []Demand) error {
	a.caps = growFloats(a.caps, len(demands))
	for i, d := range demands {
		cap, err := a.Cap(d.MBALevel, d.Cores)
		if err != nil {
			return fmt.Errorf("membw: demand %d: %w", i, err)
		}
		a.caps[i] = cap
	}
	return a.AllocateCapped(res, demands, a.caps)
}

// AllocateCapped runs the arbitration with precomputed MBA caps:
// caps[i] must be Cap(demands[i].MBALevel, demands[i].Cores). The
// solver precomputes caps once per solve (allocations are fixed across
// fixed-point rounds), which keeps the per-round path free of the
// level→fraction curve evaluation. res.Caps aliases caps on return.
//
//copart:noalloc
func (a *Arbiter) AllocateCapped(res *Result, demands []Demand, caps []float64) error {
	if len(demands) == 0 {
		res.Grants = res.Grants[:0]
		res.Caps = caps
		res.Utilization = 0
		res.Stretch = 1
		return nil
	}
	if len(caps) != len(demands) {
		return fmt.Errorf("membw: %d caps for %d demands", len(caps), len(demands))
	}
	a.wants = growFloats(a.wants, len(demands))
	for i, d := range demands {
		if d.Bytes < 0 || math.IsNaN(d.Bytes) || math.IsInf(d.Bytes, 0) {
			return fmt.Errorf("membw: invalid demand %v at index %d", d.Bytes, i)
		}
		a.wants[i] = math.Min(d.Bytes, caps[i])
	}
	res.Grants = growFloats(res.Grants, len(demands))
	if err := a.waterfillInto(res.Grants, a.wants, a.cfg.TotalBandwidth); err != nil {
		return err
	}
	total := 0.0
	for _, g := range res.Grants {
		total += g
	}
	rho := total / a.cfg.TotalBandwidth
	if rho > 1 {
		rho = 1
	}
	stretch := 1.0
	if a.cfg.CongestionK > 0 {
		stretch = 1 + a.cfg.CongestionK*math.Pow(rho, a.cfg.CongestionP)
	}
	res.Caps = caps
	res.Utilization = rho
	res.Stretch = stretch
	return nil
}

// growFloats returns s resized to n, reusing its backing array when
// possible and zeroing the visible elements.
//
//copart:noalloc
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// waterfill computes the max–min fair allocation of budget across wants:
// everyone receives min(want, fair share), and capacity freed by
// under-demanding applications is redistributed among the rest.
func waterfill(wants []float64, budget float64) ([]float64, error) {
	grants := make([]float64, len(wants))
	var a Arbiter
	if err := a.waterfillInto(grants, wants, budget); err != nil {
		return nil, err
	}
	return grants, nil
}

// waterfillInto is waterfill writing into a caller-provided grants
// slice (len(grants) == len(wants), zeroed) and reusing the arbiter's
// active-index scratch.
//
//copart:noalloc
func (a *Arbiter) waterfillInto(grants, wants []float64, budget float64) error {
	if budget <= 0 {
		return errors.New("membw: non-positive budget")
	}
	if cap(a.active) < len(wants) {
		a.active = make([]int, 0, len(wants))
	}
	active := a.active[:0]
	for i, w := range wants {
		if w > 0 {
			active = append(active, i)
		}
	}
	remaining := budget
	for len(active) > 0 && remaining > 1e-9 {
		share := remaining / float64(len(active))
		next := active[:0]
		satisfiedAny := false
		for _, i := range active {
			if wants[i]-grants[i] <= share {
				// Fully satisfiable within the fair share.
				remaining -= wants[i] - grants[i]
				grants[i] = wants[i]
				satisfiedAny = true
			} else {
				next = append(next, i)
			}
		}
		active = next
		if !satisfiedAny {
			// Everyone still active wants more than the share: split evenly.
			for _, i := range active {
				grants[i] += share
			}
			remaining = 0
			break
		}
	}
	return nil
}
