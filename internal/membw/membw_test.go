package membw

import (
	"math"
	"testing"
	"testing/quick"
)

const GB = 1e9

func testArbiter(t *testing.T) *Arbiter {
	t.Helper()
	a, err := New(Config{
		TotalBandwidth: 28 * GB,
		PerCoreCap:     9 * GB,
		CongestionK:    0.5,
		CongestionP:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestValidateLevel(t *testing.T) {
	for _, l := range []int{10, 20, 50, 100} {
		if err := ValidateLevel(l); err != nil {
			t.Errorf("level %d should be valid: %v", l, err)
		}
	}
	for _, l := range []int{0, 5, 15, 110, -10} {
		if err := ValidateLevel(l); err == nil {
			t.Errorf("level %d should be invalid", l)
		}
	}
}

func TestClampLevel(t *testing.T) {
	tests := []struct{ in, want int }{
		{0, 10}, {-5, 10}, {10, 10}, {14, 10}, {15, 20},
		{55, 60}, {99, 100}, {100, 100}, {150, 100},
	}
	for _, tt := range tests {
		if got := ClampLevel(tt.in); got != tt.want {
			t.Errorf("ClampLevel(%d)=%d want %d", tt.in, got, tt.want)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if _, err := New(Config{TotalBandwidth: 0, PerCoreCap: 1}); err == nil {
		t.Error("zero total bandwidth should error")
	}
	if _, err := New(Config{TotalBandwidth: 1, PerCoreCap: 0}); err == nil {
		t.Error("zero per-core cap should error")
	}
	if _, err := New(Config{TotalBandwidth: 1, PerCoreCap: 1, CongestionK: -1}); err == nil {
		t.Error("negative congestion k should error")
	}
}

func TestDefaultCurveMonotone(t *testing.T) {
	prev := 0.0
	for l := MinLevel; l <= MaxLevel; l += Granularity {
		f := DefaultCurve(l)
		if f <= prev {
			t.Errorf("curve not increasing at level %d: %v <= %v", l, f, prev)
		}
		prev = f
	}
	if got := DefaultCurve(100); math.Abs(got-1) > 1e-9 {
		t.Errorf("curve(100)=%v want 1", got)
	}
}

func TestCap(t *testing.T) {
	a := testArbiter(t)
	c100, err := a.Cap(100, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c100-36*GB) > 1e-3 {
		t.Errorf("cap(100,4)=%v want 36GB", c100)
	}
	c10, _ := a.Cap(10, 4)
	if c10 >= c100/5 {
		t.Errorf("cap(10) should be well below a fifth of cap(100): %v vs %v", c10, c100)
	}
	if _, err := a.Cap(15, 4); err == nil {
		t.Error("invalid level should error")
	}
	if _, err := a.Cap(100, 0); err == nil {
		t.Error("zero cores should error")
	}
}

func TestAllocateEmpty(t *testing.T) {
	a := testArbiter(t)
	r, err := a.Allocate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stretch != 1 || r.Utilization != 0 {
		t.Errorf("empty allocation %+v", r)
	}
}

func TestAllocateUnderloaded(t *testing.T) {
	a := testArbiter(t)
	demands := []Demand{
		{Bytes: 2 * GB, MBALevel: 100, Cores: 4},
		{Bytes: 3 * GB, MBALevel: 100, Cores: 4},
	}
	r, err := a.Allocate(demands)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Grants[0]-2*GB) > 1e-3 || math.Abs(r.Grants[1]-3*GB) > 1e-3 {
		t.Errorf("underloaded demands should be fully granted: %v", r.Grants)
	}
}

func TestAllocateMBACapBinds(t *testing.T) {
	a := testArbiter(t)
	// One app demanding 20 GB/s but throttled to MBA 10 on 4 cores.
	r, err := a.Allocate([]Demand{{Bytes: 20 * GB, MBALevel: 10, Cores: 4}})
	if err != nil {
		t.Fatal(err)
	}
	cap, _ := a.Cap(10, 4)
	if math.Abs(r.Grants[0]-cap) > 1e-3 {
		t.Errorf("grant %v should equal MBA cap %v", r.Grants[0], cap)
	}
}

func TestAllocateSharedBudgetBinds(t *testing.T) {
	a := testArbiter(t)
	// Two identical heavy streams at full MBA: they split the budget.
	demands := []Demand{
		{Bytes: 30 * GB, MBALevel: 100, Cores: 4},
		{Bytes: 30 * GB, MBALevel: 100, Cores: 4},
	}
	r, err := a.Allocate(demands)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Grants[0]-14*GB) > 1e-3 || math.Abs(r.Grants[1]-14*GB) > 1e-3 {
		t.Errorf("equal heavy demands should split evenly: %v", r.Grants)
	}
	if math.Abs(r.Utilization-1) > 1e-9 {
		t.Errorf("utilization %v want 1", r.Utilization)
	}
	if r.Stretch <= 1 {
		t.Errorf("saturated bus should stretch latency, got %v", r.Stretch)
	}
}

func TestAllocateMaxMinRedistribution(t *testing.T) {
	a := testArbiter(t)
	// A light app takes its small demand; the heavies split the rest.
	demands := []Demand{
		{Bytes: 4 * GB, MBALevel: 100, Cores: 4},
		{Bytes: 30 * GB, MBALevel: 100, Cores: 4},
		{Bytes: 30 * GB, MBALevel: 100, Cores: 4},
	}
	r, err := a.Allocate(demands)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Grants[0]-4*GB) > 1e-3 {
		t.Errorf("light demand should be fully satisfied: %v", r.Grants[0])
	}
	if math.Abs(r.Grants[1]-12*GB) > 1e-3 || math.Abs(r.Grants[2]-12*GB) > 1e-3 {
		t.Errorf("heavies should split the remaining 24GB: %v", r.Grants)
	}
}

func TestAllocateThrottledAppFreesBandwidth(t *testing.T) {
	a := testArbiter(t)
	// Throttling one heavy app leaves more for the other — the mechanism
	// CoPart exploits when reclaiming bandwidth from a Supply app.
	free, err := a.Allocate([]Demand{
		{Bytes: 30 * GB, MBALevel: 100, Cores: 4},
		{Bytes: 30 * GB, MBALevel: 100, Cores: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	throttled, err := a.Allocate([]Demand{
		{Bytes: 30 * GB, MBALevel: 20, Cores: 4},
		{Bytes: 30 * GB, MBALevel: 100, Cores: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if throttled.Grants[1] <= free.Grants[1] {
		t.Errorf("throttling app 0 should increase app 1's grant: %v vs %v",
			throttled.Grants[1], free.Grants[1])
	}
}

func TestAllocateInvalidDemand(t *testing.T) {
	a := testArbiter(t)
	if _, err := a.Allocate([]Demand{{Bytes: -1, MBALevel: 100, Cores: 1}}); err == nil {
		t.Error("negative demand should error")
	}
	if _, err := a.Allocate([]Demand{{Bytes: math.NaN(), MBALevel: 100, Cores: 1}}); err == nil {
		t.Error("NaN demand should error")
	}
	if _, err := a.Allocate([]Demand{{Bytes: 1, MBALevel: 17, Cores: 1}}); err == nil {
		t.Error("invalid level should error")
	}
}

// Properties of the water-filling allocation.
func TestAllocateProperties(t *testing.T) {
	a := testArbiter(t)
	f := func(raw []uint32, levelsRaw []uint8) bool {
		n := len(raw)
		if n == 0 || n > 12 {
			return true
		}
		demands := make([]Demand, n)
		for i := range demands {
			level := 10
			if i < len(levelsRaw) {
				level = ClampLevel(int(levelsRaw[i]%10+1) * 10)
			}
			demands[i] = Demand{
				Bytes:    float64(raw[i]%40) * GB / 2, // 0..19.5 GB/s
				MBALevel: level,
				Cores:    int(raw[i]%4) + 1,
			}
		}
		r, err := a.Allocate(demands)
		if err != nil {
			return false
		}
		sum := 0.0
		for i, g := range r.Grants {
			// grant ≤ demand, grant ≤ cap, grant ≥ 0
			if g < -1e-6 || g > demands[i].Bytes+1e-3 || g > r.Caps[i]+1e-3 {
				return false
			}
			sum += g
		}
		// total ≤ budget
		if sum > a.TotalBandwidth()+1e-3 {
			return false
		}
		// stretch ≥ 1
		return r.Stretch >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: allocation is work-conserving — if total clipped demand is
// below budget, everyone gets min(demand, cap) exactly.
func TestAllocateWorkConservingProperty(t *testing.T) {
	a := testArbiter(t)
	f := func(raw []uint16) bool {
		n := len(raw)
		if n == 0 || n > 8 {
			return true
		}
		demands := make([]Demand, n)
		for i := range demands {
			demands[i] = Demand{
				Bytes:    float64(raw[i]%3) * GB, // ≤ 2 GB/s each, ≤ 16 total < 28
				MBALevel: 100,
				Cores:    4,
			}
		}
		r, err := a.Allocate(demands)
		if err != nil {
			return false
		}
		for i, g := range r.Grants {
			want := math.Min(demands[i].Bytes, r.Caps[i])
			if math.Abs(g-want) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
