// Package parallel provides the bounded worker pool behind the
// experiment harness. Every figure/table generator fans independent
// cells (grid points, mixes, sweep points) through ForEach or Map; the
// pool bounds the *total* number of concurrently executing cells across
// all nested calls, so a sweep that parallelizes over points whose
// bodies themselves parallelize over mixes cannot oversubscribe the
// machine or deadlock.
//
// Determinism contract: ForEach and Map only decide *when* fn(i) runs,
// never with what inputs; callers write results by index. As long as
// fn(i) is a pure function of i (each cell builds its own
// machine.Machine and seeds its own RNG), the results are bit-identical
// for every worker count, including 1. The experiments package's
// determinism tests pin this.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// configured holds the configured worker count; 0 selects GOMAXPROCS.
var configured atomic.Int32

// tokens gates helper goroutines. It holds Workers()-1 tokens: the
// goroutine calling ForEach always participates in the work without a
// token, so nested ForEach calls degrade to sequential execution in the
// caller instead of deadlocking when the pool is saturated.
var tokens struct {
	mu sync.Mutex
	ch chan struct{}
}

// SetWorkers sets the global worker bound. n <= 0 restores the default
// (GOMAXPROCS at the time of each call). The cmd tools expose this as
// -parallel N.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	configured.Store(int32(n))
	tokens.mu.Lock()
	tokens.ch = nil // rebuilt lazily at the new size
	tokens.mu.Unlock()
}

// Workers reports the current worker bound.
func Workers() int {
	if n := configured.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// acquire tries to take a helper token without blocking; it returns a
// release function on success. Non-blocking acquisition is what makes
// nesting safe: a saturated pool simply yields no helpers.
func acquire() (release func(), ok bool) {
	tokens.mu.Lock()
	if tokens.ch == nil {
		n := Workers() - 1
		if n < 0 {
			n = 0
		}
		tokens.ch = make(chan struct{}, n)
	}
	ch := tokens.ch
	tokens.mu.Unlock()
	select {
	case ch <- struct{}{}:
		return func() { <-ch }, true
	default:
		return nil, false
	}
}

// ForEach runs fn(0), …, fn(n-1), fanning the calls across up to
// Workers() concurrently executing cells (including the caller). The
// first error — from the lowest index among the cells that ran —
// cancels the remaining unstarted cells and is returned. fn must be
// safe for concurrent invocation with distinct indices.
func ForEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if Workers() == 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64
		stop     atomic.Bool
		errMu    sync.Mutex
		errIdx   = -1
		firstErr error
		wg       sync.WaitGroup
	)
	work := func() {
		for !stop.Load() {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			if err := fn(i); err != nil {
				errMu.Lock()
				if errIdx < 0 || i < errIdx {
					errIdx, firstErr = i, err
				}
				errMu.Unlock()
				stop.Store(true)
				return
			}
		}
	}
	// Spawn at most n-1 helpers (the caller handles the rest), each
	// holding one global token for its lifetime.
	for g := 0; g < n-1; g++ {
		release, ok := acquire()
		if !ok {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer release()
			work()
		}()
	}
	work()
	wg.Wait()
	return firstErr
}

// ForEachBlock partitions [0, n) into contiguous blocks of the given
// size — [0, block), [block, 2·block), … (the last block may be short)
// — and runs fn(lo, hi) over them under the same pool and determinism
// contract as ForEach: the pool decides only *when* a block runs,
// never its bounds, so as long as fn is a pure function of its range
// the results are bit-identical at any worker count. block <= 0 (or
// >= n) selects a single block covering [0, n).
//
// Blocks are the fleet's dispatch unit: batching nodes amortizes the
// per-cell scheduling cost of ForEach, and — because the single-worker
// and single-block paths below call fn inline, without wrapping it in
// a closure — the sequential steady state stays allocation-free, which
// per-index ForEach cannot offer (its callers close over their result
// slices). The first error, from the lowest-indexed block among those
// that ran, wins, as in ForEach.
func ForEachBlock(n, block int, fn func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	if block <= 0 || block > n {
		block = n
	}
	nb := (n + block - 1) / block
	if nb == 1 || Workers() == 1 {
		for lo := 0; lo < n; lo += block {
			hi := lo + block
			if hi > n {
				hi = n
			}
			if err := fn(lo, hi); err != nil {
				return err
			}
		}
		return nil
	}
	return ForEach(nb, func(b int) error {
		lo := b * block
		hi := lo + block
		if hi > n {
			hi = n
		}
		return fn(lo, hi)
	})
}

// Map runs fn over 0..n-1 under the same pool and returns the results
// in index order.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
