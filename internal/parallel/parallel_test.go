package parallel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// withWorkers runs f with the pool bound set to n, restoring the
// default afterwards.
func withWorkers(t *testing.T, n int, f func()) {
	t.Helper()
	SetWorkers(n)
	defer SetWorkers(0)
	f()
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, w := range []int{1, 2, 4, 16} {
		withWorkers(t, w, func() {
			const n = 1000
			seen := make([]int32, n)
			if err := ForEach(n, func(i int) error {
				atomic.AddInt32(&seen[i], 1)
				return nil
			}); err != nil {
				t.Fatalf("workers=%d: %v", w, err)
			}
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d: index %d ran %d times", w, i, c)
				}
			}
		})
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	calls := 0
	if err := ForEach(0, func(int) error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(-3, func(int) error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("fn called %d times for empty ranges", calls)
	}
}

func TestForEachErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	for _, w := range []int{1, 4} {
		withWorkers(t, w, func() {
			err := ForEach(100, func(i int) error {
				if i == 37 {
					return fmt.Errorf("cell %d: %w", i, boom)
				}
				return nil
			})
			if !errors.Is(err, boom) {
				t.Fatalf("workers=%d: got %v, want wrapped boom", w, err)
			}
		})
	}
}

func TestForEachErrorCancelsRemaining(t *testing.T) {
	withWorkers(t, 2, func() {
		var ran atomic.Int32
		_ = ForEach(10000, func(i int) error {
			ran.Add(1)
			return errors.New("immediate")
		})
		// Cancellation is best-effort; with 2 workers only a handful of
		// cells may start after the first error.
		if n := ran.Load(); n > 100 {
			t.Fatalf("%d cells ran after an immediate error", n)
		}
	})
}

func TestConcurrencyBound(t *testing.T) {
	const w = 3
	withWorkers(t, w, func() {
		var cur, max atomic.Int32
		if err := ForEach(200, func(i int) error {
			c := cur.Add(1)
			for {
				m := max.Load()
				if c <= m || max.CompareAndSwap(m, c) {
					break
				}
			}
			cur.Add(-1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if m := max.Load(); m > w {
			t.Fatalf("observed %d concurrent cells, bound is %d", m, w)
		}
	})
}

func TestNestedForEachDoesNotDeadlockAndStaysBounded(t *testing.T) {
	const w = 4
	withWorkers(t, w, func() {
		var cur, max atomic.Int32
		body := func() {
			c := cur.Add(1)
			for {
				m := max.Load()
				if c <= m || max.CompareAndSwap(m, c) {
					break
				}
			}
			cur.Add(-1)
		}
		if err := ForEach(8, func(i int) error {
			return ForEach(8, func(j int) error {
				body()
				return nil
			})
		}); err != nil {
			t.Fatal(err)
		}
		// The caller of each nested ForEach participates without a
		// token, so the hard bound is Workers() executing cells.
		if m := max.Load(); m > w {
			t.Fatalf("observed %d concurrent nested cells, bound is %d", m, w)
		}
	})
}

func TestMap(t *testing.T) {
	for _, w := range []int{1, 4} {
		withWorkers(t, w, func() {
			out, err := Map(50, func(i int) (int, error) { return i * i, nil })
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range out {
				if v != i*i {
					t.Fatalf("out[%d]=%d", i, v)
				}
			}
		})
	}
	if _, err := Map(3, func(i int) (int, error) { return 0, errors.New("x") }); err == nil {
		t.Fatal("Map should propagate errors")
	}
}

func TestSetWorkersConcurrentWithForEach(t *testing.T) {
	// Resizing the pool while work is in flight must not race or leak.
	defer SetWorkers(0)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= 8; i++ {
			SetWorkers(i)
		}
	}()
	for r := 0; r < 8; r++ {
		if err := ForEach(100, func(i int) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
}

func TestWorkersDefault(t *testing.T) {
	SetWorkers(0)
	if Workers() < 1 {
		t.Fatalf("Workers()=%d", Workers())
	}
	SetWorkers(5)
	defer SetWorkers(0)
	if Workers() != 5 {
		t.Fatalf("Workers()=%d, want 5", Workers())
	}
}
