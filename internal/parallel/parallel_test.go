package parallel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// withWorkers runs f with the pool bound set to n, restoring the
// default afterwards.
func withWorkers(t *testing.T, n int, f func()) {
	t.Helper()
	SetWorkers(n)
	defer SetWorkers(0)
	f()
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, w := range []int{1, 2, 4, 16} {
		withWorkers(t, w, func() {
			const n = 1000
			seen := make([]int32, n)
			if err := ForEach(n, func(i int) error {
				atomic.AddInt32(&seen[i], 1)
				return nil
			}); err != nil {
				t.Fatalf("workers=%d: %v", w, err)
			}
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d: index %d ran %d times", w, i, c)
				}
			}
		})
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	calls := 0
	if err := ForEach(0, func(int) error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(-3, func(int) error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("fn called %d times for empty ranges", calls)
	}
}

func TestForEachErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	for _, w := range []int{1, 4} {
		withWorkers(t, w, func() {
			err := ForEach(100, func(i int) error {
				if i == 37 {
					return fmt.Errorf("cell %d: %w", i, boom)
				}
				return nil
			})
			if !errors.Is(err, boom) {
				t.Fatalf("workers=%d: got %v, want wrapped boom", w, err)
			}
		})
	}
}

func TestForEachErrorCancelsRemaining(t *testing.T) {
	withWorkers(t, 2, func() {
		var ran atomic.Int32
		_ = ForEach(10000, func(i int) error {
			ran.Add(1)
			return errors.New("immediate")
		})
		// Cancellation is best-effort; with 2 workers only a handful of
		// cells may start after the first error.
		if n := ran.Load(); n > 100 {
			t.Fatalf("%d cells ran after an immediate error", n)
		}
	})
}

func TestConcurrencyBound(t *testing.T) {
	const w = 3
	withWorkers(t, w, func() {
		var cur, max atomic.Int32
		if err := ForEach(200, func(i int) error {
			c := cur.Add(1)
			for {
				m := max.Load()
				if c <= m || max.CompareAndSwap(m, c) {
					break
				}
			}
			cur.Add(-1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if m := max.Load(); m > w {
			t.Fatalf("observed %d concurrent cells, bound is %d", m, w)
		}
	})
}

func TestNestedForEachDoesNotDeadlockAndStaysBounded(t *testing.T) {
	const w = 4
	withWorkers(t, w, func() {
		var cur, max atomic.Int32
		body := func() {
			c := cur.Add(1)
			for {
				m := max.Load()
				if c <= m || max.CompareAndSwap(m, c) {
					break
				}
			}
			cur.Add(-1)
		}
		if err := ForEach(8, func(i int) error {
			return ForEach(8, func(j int) error {
				body()
				return nil
			})
		}); err != nil {
			t.Fatal(err)
		}
		// The caller of each nested ForEach participates without a
		// token, so the hard bound is Workers() executing cells.
		if m := max.Load(); m > w {
			t.Fatalf("observed %d concurrent nested cells, bound is %d", m, w)
		}
	})
}

func TestForEachBlockCoversAllIndicesExactlyOnce(t *testing.T) {
	for _, w := range []int{1, 2, 4, 16} {
		for _, block := range []int{1, 3, 7, 64, 1000, 2000, 0, -5} {
			withWorkers(t, w, func() {
				const n = 1000
				seen := make([]int32, n)
				if err := ForEachBlock(n, block, func(lo, hi int) error {
					if lo < 0 || hi > n || lo >= hi {
						return fmt.Errorf("bad block [%d, %d)", lo, hi)
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&seen[i], 1)
					}
					return nil
				}); err != nil {
					t.Fatalf("workers=%d block=%d: %v", w, block, err)
				}
				for i, c := range seen {
					if c != 1 {
						t.Fatalf("workers=%d block=%d: index %d covered %d times", w, block, i, c)
					}
				}
			})
		}
	}
}

func TestForEachBlockBounds(t *testing.T) {
	// Block bounds are a pure function of (n, block) — never of the
	// worker count — which is what lets callers stripe per-block state
	// deterministically.
	type span struct{ lo, hi int }
	collect := func(w int) []span {
		var mu sync.Mutex
		var out []span
		withWorkers(t, w, func() {
			if err := ForEachBlock(10, 4, func(lo, hi int) error {
				mu.Lock()
				out = append(out, span{lo, hi})
				mu.Unlock()
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		})
		want := map[span]bool{{0, 4}: true, {4, 8}: true, {8, 10}: true}
		if len(out) != len(want) {
			t.Fatalf("workers=%d: %d blocks, want %d", w, len(out), len(want))
		}
		for _, s := range out {
			if !want[s] {
				t.Fatalf("workers=%d: unexpected block [%d, %d)", w, s.lo, s.hi)
			}
		}
		return out
	}
	collect(1)
	collect(4)
}

func TestForEachBlockErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	for _, w := range []int{1, 4} {
		withWorkers(t, w, func() {
			err := ForEachBlock(100, 10, func(lo, hi int) error {
				if lo == 30 {
					return fmt.Errorf("block %d: %w", lo, boom)
				}
				return nil
			})
			if !errors.Is(err, boom) {
				t.Fatalf("workers=%d: got %v, want wrapped boom", w, err)
			}
		})
	}
	if err := ForEachBlock(0, 4, func(lo, hi int) error { return errors.New("x") }); err != nil {
		t.Fatalf("empty range invoked fn: %v", err)
	}
}

// TestForEachBlockSequentialAllocFree pins the property the fleet's
// zero-alloc dispatch rests on: with one worker, ForEachBlock invokes a
// package-level function value inline without allocating.
func TestForEachBlockSequentialAllocFree(t *testing.T) {
	withWorkers(t, 1, func() {
		avg := testing.AllocsPerRun(100, func() {
			if err := ForEachBlock(64, 8, discardBlock); err != nil {
				t.Fatal(err)
			}
		})
		if avg != 0 {
			t.Errorf("sequential ForEachBlock allocates %.1f times per call, want 0", avg)
		}
	})
}

// discardBlock is a package-level funcval so passing it allocates
// nothing (closures materialize per call; named functions do not).
func discardBlock(lo, hi int) error { return nil }

func TestMap(t *testing.T) {
	for _, w := range []int{1, 4} {
		withWorkers(t, w, func() {
			out, err := Map(50, func(i int) (int, error) { return i * i, nil })
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range out {
				if v != i*i {
					t.Fatalf("out[%d]=%d", i, v)
				}
			}
		})
	}
	if _, err := Map(3, func(i int) (int, error) { return 0, errors.New("x") }); err == nil {
		t.Fatal("Map should propagate errors")
	}
}

func TestSetWorkersConcurrentWithForEach(t *testing.T) {
	// Resizing the pool while work is in flight must not race or leak.
	defer SetWorkers(0)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= 8; i++ {
			SetWorkers(i)
		}
	}()
	for r := 0; r < 8; r++ {
		if err := ForEach(100, func(i int) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
}

func TestWorkersDefault(t *testing.T) {
	SetWorkers(0)
	if Workers() < 1 {
		t.Fatalf("Workers()=%d", Workers())
	}
	SetWorkers(5)
	defer SetWorkers(0)
	if Workers() != 5 {
		t.Fatalf("Workers()=%d, want 5", Workers())
	}
}
