// Package pmc turns cumulative performance-monitoring counters into the
// per-period rates CoPart consumes.
//
// The paper samples three counters through PAPI (§3.2): dynamically
// executed instructions, LLC accesses, and LLC misses. The controller
// never looks at absolutes — it works with per-second rates over its
// control period (IPS for slowdowns, the LLC access rate and miss ratio
// for the LLC classifier, the miss rate for the memory-traffic ratio).
// The Sampler here computes exactly those windowed rates from any counter
// Source; the machine simulator is one Source, and a PAPI- or
// perf-events-backed implementation would be another.
package pmc

import (
	"fmt"
	"time"

	"repro/internal/machine"
)

// Source provides cumulative counters per application. *machine.Machine
// satisfies this interface.
type Source interface {
	ReadCounters(app string) (machine.Counters, error)
}

// Rates are windowed per-second counter rates.
type Rates struct {
	// IPS is instructions per second over the window.
	IPS float64
	// AccessRate is LLC accesses per second.
	AccessRate float64
	// MissRate is LLC misses per second.
	MissRate float64
	// MissRatio is misses/accesses over the window (0 when no accesses).
	MissRatio float64
	// Window is the sampling interval the rates were computed over.
	Window time.Duration
}

// Sampler tracks the previous counter snapshot per application and
// produces rates on each sampling round. Snapshots are held by pointer
// so the steady-state Sample path updates them in place: one map lookup
// per call, no map write, no allocation (the snapshot allocates once,
// the first time an application is seen).
type Sampler struct {
	src   Source
	last  map[string]*sample
	drops int
}

type sample struct {
	counters machine.Counters
	at       time.Duration
}

// NewSampler creates a sampler over src.
func NewSampler(src Source) *Sampler {
	return &Sampler{src: src, last: make(map[string]*sample)}
}

// Sample reads app's counters at virtual time now and returns the rates
// since the previous call. The boolean is false on the first call for an
// application (there is no window yet); the snapshot is still recorded.
func (s *Sampler) Sample(app string, now time.Duration) (Rates, bool, error) {
	cur, err := s.src.ReadCounters(app)
	if err != nil {
		return Rates{}, false, err
	}
	snap, seen := s.last[app]
	if !seen {
		s.last[app] = &sample{counters: cur, at: now}
		return Rates{}, false, nil
	}
	window := now - snap.at
	if window < 0 {
		return Rates{}, false, fmt.Errorf("pmc: negative window %v for %s", window, app)
	}
	if window == 0 {
		// A re-sample at the same instant carries no new information;
		// keep the existing snapshot so the eventual window stays anchored.
		return Rates{}, false, nil
	}
	prev := *snap
	snap.counters, snap.at = cur, now
	secs := window.Seconds()
	dInstr := cur.Instructions - prev.counters.Instructions
	dAcc := cur.LLCAccesses - prev.counters.LLCAccesses
	dMiss := cur.LLCMisses - prev.counters.LLCMisses
	if dInstr < 0 || dAcc < 0 || dMiss < 0 {
		// A negative delta means the hardware counter wrapped around or
		// was reset (the fd died and reopened, the app restarted). The
		// absolute values carry no usable window, so the sample is
		// dropped rather than turned into a bogus rate; the snapshot
		// update above re-anchors the next window at the post-wrap values.
		s.drops++
		return Rates{}, false, nil
	}
	r := Rates{
		IPS:        dInstr / secs,
		AccessRate: dAcc / secs,
		MissRate:   dMiss / secs,
		Window:     window,
	}
	if dAcc > 0 {
		r.MissRatio = dMiss / dAcc
	}
	return r, true, nil
}

// Drops reports how many samples were discarded because a counter went
// backwards (wraparound or reset) since the sampler was created.
func (s *Sampler) Drops() int { return s.drops }

// Forget drops the stored snapshot for app (e.g. after the application
// terminates and a same-named one may launch later).
func (s *Sampler) Forget(app string) {
	delete(s.last, app)
}

// Reset drops all snapshots.
func (s *Sampler) Reset() {
	s.last = make(map[string]*sample)
}
