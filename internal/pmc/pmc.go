// Package pmc turns cumulative performance-monitoring counters into the
// per-period rates CoPart consumes.
//
// The paper samples three counters through PAPI (§3.2): dynamically
// executed instructions, LLC accesses, and LLC misses. The controller
// never looks at absolutes — it works with per-second rates over its
// control period (IPS for slowdowns, the LLC access rate and miss ratio
// for the LLC classifier, the miss rate for the memory-traffic ratio).
// The Sampler here computes exactly those windowed rates from any counter
// Source; the machine simulator is one Source, and a PAPI- or
// perf-events-backed implementation would be another.
package pmc

import (
	"fmt"
	"time"

	"repro/internal/machine"
)

// Source provides cumulative counters per application. *machine.Machine
// satisfies this interface.
type Source interface {
	ReadCounters(app string) (machine.Counters, error)
}

// Rates are windowed per-second counter rates.
type Rates struct {
	// IPS is instructions per second over the window.
	IPS float64
	// AccessRate is LLC accesses per second.
	AccessRate float64
	// MissRate is LLC misses per second.
	MissRate float64
	// MissRatio is misses/accesses over the window (0 when no accesses).
	MissRatio float64
	// Window is the sampling interval the rates were computed over.
	Window time.Duration
}

// Sampler tracks the previous counter snapshot per application and
// produces rates on each sampling round. Snapshots are held by pointer
// so the steady-state Sample path updates them in place: one map lookup
// per call, no map write, no allocation (the snapshot allocates once,
// the first time an application is seen; Reset recycles retired
// snapshots through a freelist, so a pooled controller's relaunch
// cycle allocates none at all).
type Sampler struct {
	src Source
	// names/snaps hold the tracked set in insertion order and serve the
	// small-set linear fast path: a consolidation controller samples the
	// same handful of interned name strings twice per period, and a scan
	// whose comparisons hit Go's pointer-equality shortcut beats hashing
	// the name every time — it also keeps a pooled controller's relaunch
	// cycle (insert a few names, Reset, repeat) entirely off the map.
	names []string
	snaps []*sample
	// cursor remembers where the last linear-scan hit landed plus one:
	// controllers sample their apps in a fixed order, so the next lookup
	// almost always matches at the cursor on its first, pointer-equal
	// comparison instead of scanning past its predecessors.
	cursor int
	// last is materialized lazily, only once the tracked set outgrows
	// smallScan; while empty, the slices are authoritative alone.
	last  map[string]*sample
	free  []*sample
	drops int
}

type sample struct {
	counters machine.Counters
	at       time.Duration
}

// smallScan bounds the linear-scan fast path (see Sampler.names).
const smallScan = 8

// lookup resolves app's snapshot: a linear scan while the set is small
// enough that the map was never materialized, the map afterwards.
//
//copart:noalloc
func (s *Sampler) lookup(app string) (*sample, bool) {
	if len(s.last) == 0 {
		if c := s.cursor; c < len(s.names) && s.names[c] == app {
			s.advance(c)
			return s.snaps[c], true
		}
		for i, n := range s.names {
			if n == app {
				s.advance(i)
				return s.snaps[i], true
			}
		}
		return nil, false
	}
	snap, ok := s.last[app]
	return snap, ok
}

// advance moves the scan cursor past a hit at index i, wrapping so a
// fixed sampling rotation stays on the fast path forever.
//
//copart:noalloc
func (s *Sampler) advance(i int) {
	s.cursor = i + 1
	if s.cursor >= len(s.names) {
		s.cursor = 0
	}
}

// insert records a new tracked app, spilling the whole set into the map
// once it outgrows the linear-scan bound.
//
//copart:noalloc
func (s *Sampler) insert(app string, snap *sample) {
	s.names = append(s.names, app)  //copart:allocok amortized append growth; capacity is retained across resets
	s.snaps = append(s.snaps, snap) //copart:allocok amortized append growth; capacity is retained across resets
	if len(s.last) > 0 {
		s.last[app] = snap
		return
	}
	if len(s.names) > smallScan {
		if s.last == nil {
			s.last = make(map[string]*sample, 2*smallScan) //copart:allocok one-time spill past the linear-scan bound
		}
		for i, n := range s.names {
			s.last[n] = s.snaps[i]
		}
	}
}

// NewSampler creates a sampler over src.
func NewSampler(src Source) *Sampler {
	return &Sampler{src: src}
}

// Sample reads app's counters at virtual time now and returns the rates
// since the previous call. The boolean is false on the first call for an
// application (there is no window yet); the snapshot is still recorded.
func (s *Sampler) Sample(app string, now time.Duration) (Rates, bool, error) {
	cur, err := s.src.ReadCounters(app)
	if err != nil {
		return Rates{}, false, err
	}
	snap, seen := s.lookup(app)
	if !seen {
		if n := len(s.free); n > 0 {
			snap, s.free[n-1], s.free = s.free[n-1], nil, s.free[:n-1]
			snap.counters, snap.at = cur, now
		} else {
			snap = &sample{counters: cur, at: now} //copart:allocok first sighting of an app; Reset recycles the snapshot
		}
		s.insert(app, snap)
		return Rates{}, false, nil
	}
	window := now - snap.at
	if window < 0 {
		return Rates{}, false, fmt.Errorf("pmc: negative window %v for %s", window, app)
	}
	if window == 0 {
		// A re-sample at the same instant carries no new information;
		// keep the existing snapshot so the eventual window stays anchored.
		return Rates{}, false, nil
	}
	prev := *snap
	snap.counters, snap.at = cur, now
	secs := window.Seconds()
	dInstr := cur.Instructions - prev.counters.Instructions
	dAcc := cur.LLCAccesses - prev.counters.LLCAccesses
	dMiss := cur.LLCMisses - prev.counters.LLCMisses
	if dInstr < 0 || dAcc < 0 || dMiss < 0 {
		// A negative delta means the hardware counter wrapped around or
		// was reset (the fd died and reopened, the app restarted). The
		// absolute values carry no usable window, so the sample is
		// dropped rather than turned into a bogus rate; the snapshot
		// update above re-anchors the next window at the post-wrap values.
		s.drops++
		return Rates{}, false, nil
	}
	r := Rates{
		IPS:        dInstr / secs,
		AccessRate: dAcc / secs,
		MissRate:   dMiss / secs,
		Window:     window,
	}
	if dAcc > 0 {
		r.MissRatio = dMiss / dAcc
	}
	return r, true, nil
}

// Drops reports how many samples were discarded because a counter went
// backwards (wraparound or reset) since the sampler was created.
func (s *Sampler) Drops() int { return s.drops }

// Forget drops the stored snapshot for app (e.g. after the application
// terminates and a same-named one may launch later).
func (s *Sampler) Forget(app string) {
	delete(s.last, app)
	for i, n := range s.names {
		if n == app {
			s.names = append(s.names[:i], s.names[i+1:]...)
			s.snaps = append(s.snaps[:i], s.snaps[i+1:]...)
			break
		}
	}
	// The map, once materialized, stays authoritative even if the set
	// shrinks back under the scan bound — lookup switches on len(last).
}

// Reset drops all snapshots, recycling them through the freelist so the
// next tenant's first sightings allocate nothing (map buckets are kept
// too). Drops are cumulative across tenants, matching the doc on Drops.
//
//copart:noalloc
func (s *Sampler) Reset() {
	for i, snap := range s.snaps {
		*snap = sample{}
		s.free = append(s.free, snap) //copart:allocok amortized append growth; capacity is retained across resets
		s.names[i] = ""
		s.snaps[i] = nil
	}
	s.names = s.names[:0]
	s.snaps = s.snaps[:0]
	s.cursor = 0
	clear(s.last)
}
