package pmc

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/machine"
)

// fakeSource is a scriptable counter source.
type fakeSource struct {
	counters map[string]machine.Counters
	err      error
}

func (f *fakeSource) ReadCounters(app string) (machine.Counters, error) {
	if f.err != nil {
		return machine.Counters{}, f.err
	}
	c, ok := f.counters[app]
	if !ok {
		return machine.Counters{}, errors.New("unknown app")
	}
	return c, nil
}

func TestFirstSampleHasNoWindow(t *testing.T) {
	src := &fakeSource{counters: map[string]machine.Counters{"a": {Instructions: 100}}}
	s := NewSampler(src)
	_, ok, err := s.Sample("a", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("first sample should report no window")
	}
}

func TestRates(t *testing.T) {
	src := &fakeSource{counters: map[string]machine.Counters{
		"a": {Instructions: 1000, LLCAccesses: 100, LLCMisses: 10},
	}}
	s := NewSampler(src)
	if _, _, err := s.Sample("a", 0); err != nil {
		t.Fatal(err)
	}
	src.counters["a"] = machine.Counters{Instructions: 3000, LLCAccesses: 300, LLCMisses: 60}
	r, ok, err := s.Sample("a", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("second sample should have a window")
	}
	if math.Abs(r.IPS-1000) > 1e-9 {
		t.Errorf("IPS=%v want 1000", r.IPS)
	}
	if math.Abs(r.AccessRate-100) > 1e-9 {
		t.Errorf("AccessRate=%v want 100", r.AccessRate)
	}
	if math.Abs(r.MissRate-25) > 1e-9 {
		t.Errorf("MissRate=%v want 25", r.MissRate)
	}
	if math.Abs(r.MissRatio-0.25) > 1e-9 {
		t.Errorf("MissRatio=%v want 0.25", r.MissRatio)
	}
	if r.Window != 2*time.Second {
		t.Errorf("Window=%v", r.Window)
	}
}

func TestMissRatioZeroWithoutAccesses(t *testing.T) {
	src := &fakeSource{counters: map[string]machine.Counters{"a": {Instructions: 1}}}
	s := NewSampler(src)
	s.Sample("a", 0)
	src.counters["a"] = machine.Counters{Instructions: 2}
	r, ok, err := s.Sample("a", time.Second)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if r.MissRatio != 0 {
		t.Errorf("MissRatio=%v want 0", r.MissRatio)
	}
}

// TestWraparoundDropsSample models a counter wrapping mid-stream: the
// wrapped sample must be discarded (no bogus negative rate, no error) and
// the window re-anchored so the next sample is correct again.
func TestWraparoundDropsSample(t *testing.T) {
	src := &fakeSource{counters: map[string]machine.Counters{
		"a": {Instructions: 1 << 32, LLCAccesses: 1000, LLCMisses: 100},
	}}
	s := NewSampler(src)
	s.Sample("a", 0)
	// The instruction counter wraps: cumulative value becomes small again.
	src.counters["a"] = machine.Counters{Instructions: 500, LLCAccesses: 1100, LLCMisses: 110}
	r, ok, err := s.Sample("a", time.Second)
	if err != nil {
		t.Fatalf("wraparound must not error: %v", err)
	}
	if ok {
		t.Fatalf("wrapped sample must be dropped, got rates %+v", r)
	}
	if s.Drops() != 1 {
		t.Errorf("Drops()=%d want 1", s.Drops())
	}
	// The next window is anchored at the post-wrap snapshot and correct.
	src.counters["a"] = machine.Counters{Instructions: 2500, LLCAccesses: 1300, LLCMisses: 130}
	r, ok, err = s.Sample("a", 2*time.Second)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if math.Abs(r.IPS-2000) > 1e-9 {
		t.Errorf("post-wrap IPS=%v want 2000", r.IPS)
	}
	if math.Abs(r.AccessRate-200) > 1e-9 {
		t.Errorf("post-wrap AccessRate=%v want 200", r.AccessRate)
	}
}

// TestCounterResetDropsSample models a full counter reset (all counters
// back to ~zero, e.g. the perf fd was reopened after its process died).
func TestCounterResetDropsSample(t *testing.T) {
	src := &fakeSource{counters: map[string]machine.Counters{
		"a": {Instructions: 9000, LLCAccesses: 900, LLCMisses: 90},
	}}
	s := NewSampler(src)
	s.Sample("a", 0)
	src.counters["a"] = machine.Counters{}
	r, ok, err := s.Sample("a", time.Second)
	if err != nil {
		t.Fatalf("reset must not error: %v", err)
	}
	if ok {
		t.Fatalf("reset sample must be dropped, got rates %+v", r)
	}
	if s.Drops() != 1 {
		t.Errorf("Drops()=%d want 1", s.Drops())
	}
	src.counters["a"] = machine.Counters{Instructions: 100, LLCAccesses: 10, LLCMisses: 1}
	r, ok, err = s.Sample("a", 2*time.Second)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if math.Abs(r.IPS-100) > 1e-9 {
		t.Errorf("post-reset IPS=%v want 100", r.IPS)
	}
}

func TestZeroWindowIsNoOp(t *testing.T) {
	src := &fakeSource{counters: map[string]machine.Counters{"a": {Instructions: 10}}}
	s := NewSampler(src)
	s.Sample("a", time.Second)
	_, ok, err := s.Sample("a", time.Second)
	if err != nil {
		t.Fatalf("zero window should be a no-op, got %v", err)
	}
	if ok {
		t.Error("zero window should not produce rates")
	}
	// The original snapshot must survive so the next window is anchored
	// at the first sample.
	src.counters["a"] = machine.Counters{Instructions: 30}
	r, ok, err := s.Sample("a", 3*time.Second)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if math.Abs(r.IPS-10) > 1e-9 {
		t.Errorf("IPS=%v want 10 (anchored at the first snapshot)", r.IPS)
	}
}

func TestNegativeWindowError(t *testing.T) {
	src := &fakeSource{counters: map[string]machine.Counters{"a": {}}}
	s := NewSampler(src)
	s.Sample("a", time.Second)
	if _, _, err := s.Sample("a", time.Millisecond); err == nil {
		t.Error("negative window should error")
	}
}

func TestSourceErrorPropagates(t *testing.T) {
	src := &fakeSource{err: errors.New("boom")}
	s := NewSampler(src)
	if _, _, err := s.Sample("a", 0); err == nil {
		t.Error("source error should propagate")
	}
}

func TestForgetResetsWindow(t *testing.T) {
	src := &fakeSource{counters: map[string]machine.Counters{"a": {Instructions: 100}}}
	s := NewSampler(src)
	s.Sample("a", 0)
	s.Forget("a")
	_, ok, err := s.Sample("a", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("sample after Forget should behave like a first sample")
	}
}

func TestReset(t *testing.T) {
	src := &fakeSource{counters: map[string]machine.Counters{"a": {}, "b": {}}}
	s := NewSampler(src)
	s.Sample("a", 0)
	s.Sample("b", 0)
	s.Reset()
	if _, ok, _ := s.Sample("a", time.Second); ok {
		t.Error("Reset should drop all snapshots")
	}
}

func TestSamplerAgainstMachine(t *testing.T) {
	cfg := machine.DefaultConfig()
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	model := machine.AppModel{
		Name: "app", Cores: 4, CPIBase: 1, AccPerInstr: 0.01,
		Hot: []machine.WSComponent{{Bytes: 4 << 20, Weight: 1}},
	}
	if err := m.AddApp(model); err != nil {
		t.Fatal(err)
	}
	s := NewSampler(m)
	if _, _, err := s.Sample("app", m.Now()); err != nil {
		t.Fatal(err)
	}
	if err := m.Step(time.Second); err != nil {
		t.Fatal(err)
	}
	r, ok, err := s.Sample("app", m.Now())
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	perfs, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.IPS-perfs[0].IPS) > 1e-6*perfs[0].IPS {
		t.Errorf("sampled IPS %v vs solved %v", r.IPS, perfs[0].IPS)
	}
}
