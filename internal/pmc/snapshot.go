package pmc

import (
	"sort"
	"time"

	"repro/internal/machine"
)

// SamplerSnapshot is the serializable window state of a Sampler: the
// last counter anchor per application plus the drop count. Apps are
// sorted by name so the encoding is deterministic.
type SamplerSnapshot struct {
	Apps  []AppWindow `json:"apps,omitempty"`
	Drops int         `json:"drops,omitempty"`
}

// AppWindow is one application's last counter anchor.
type AppWindow struct {
	App      string           `json:"app"`
	Counters machine.Counters `json:"counters"`
	At       int64            `json:"atNs"` // anchor time, nanoseconds
}

// Snapshot captures the sampler's window anchors.
func (s *Sampler) Snapshot() SamplerSnapshot {
	snap := SamplerSnapshot{Drops: s.drops}
	for app, last := range s.last {
		snap.Apps = append(snap.Apps, AppWindow{
			App:      app,
			Counters: last.counters,
			At:       int64(last.at),
		})
	}
	sort.Slice(snap.Apps, func(i, j int) bool { return snap.Apps[i].App < snap.Apps[j].App })
	return snap
}

// RestoreSnapshot replaces the sampler's window state with the
// snapshot's, so the next Sample call computes the same window the
// original sampler would have.
func (s *Sampler) RestoreSnapshot(snap SamplerSnapshot) {
	s.Reset()
	s.drops = snap.Drops
	for _, w := range snap.Apps {
		s.last[w.App] = &sample{counters: w.Counters, at: time.Duration(w.At)}
	}
}
