// Package policies implements the resource-allocation policies compared
// in the paper's evaluation (§6.1): equal allocation (EQ), static oracle
// allocation (ST), dynamic-LLC-only (CAT-only), dynamic-bandwidth-only
// (MBA-only), the full coordinated controller (CoPart), and the
// unpartitioned baseline (None) used to normalize the §4.2 fairness
// characterization.
package policies

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/fairness"
	"repro/internal/machine"
	"repro/internal/membw"
	"repro/internal/workloads"
)

// Result is the outcome of running a policy on a workload mix.
type Result struct {
	// Names lists the applications, in mix order.
	Names []string
	// Allocs holds the final per-application allocations.
	Allocs []machine.Alloc
	// Slowdowns are Equation 1 slowdowns at the final state.
	Slowdowns []float64
	// Unfairness is Equation 2 at the final state (lower is better).
	Unfairness float64
	// Throughput is the geometric-mean IPS across applications
	// (Figure 17's metric).
	Throughput float64
}

// Policy allocates resources for a workload mix on a fresh machine.
type Policy interface {
	// Name is the paper's label for the policy.
	Name() string
	// Run consolidates the models on a fresh machine built from cfg,
	// applies the policy, and reports the steady-state outcome.
	Run(cfg machine.Config, models []machine.AppModel) (Result, error)
}

// evaluate computes a Result for fixed allocations: it solves the
// consolidated steady state and divides each application's solo
// full-resource IPS by its consolidated IPS.
func evaluate(cfg machine.Config, models []machine.AppModel, allocs []machine.Alloc) (Result, error) {
	// Cache-enabled: the solo solves repeat verbatim across the policies
	// evaluating one mix (and across grid cells), so the shared L2
	// deduplicates them process-wide.
	m, err := machine.New(cfg, machine.WithSolveCache())
	if err != nil {
		return Result{}, err
	}
	perfs, err := m.SolveFor(models, allocs)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Names:     make([]string, len(models)),
		Allocs:    allocs,
		Slowdowns: make([]float64, len(models)),
	}
	ips := make([]float64, len(models))
	for i, model := range models {
		solo, err := m.SoloPerf(model)
		if err != nil {
			return Result{}, err
		}
		res.Names[i] = model.Name
		res.Slowdowns[i], err = fairness.Slowdown(solo.IPS, perfs[i].IPS)
		if err != nil {
			return Result{}, err
		}
		ips[i] = perfs[i].IPS
	}
	res.Unfairness, err = fairness.Unfairness(res.Slowdowns)
	if err != nil {
		return Result{}, err
	}
	res.Throughput, err = fairness.Throughput(ips)
	if err != nil {
		return Result{}, err
	}
	return res, nil
}

// EQ is the equal-allocation policy: LLC ways split evenly and every
// application at the equal MBA share.
type EQ struct{}

// Name implements Policy.
func (EQ) Name() string { return "EQ" }

// Run implements Policy.
func (EQ) Run(cfg machine.Config, models []machine.AppModel) (Result, error) {
	counts, err := machine.EqualSplit(cfg.LLCWays, len(models))
	if err != nil {
		return Result{}, err
	}
	masks, err := machine.AssignContiguousWays(counts, 0, cfg.LLCWays)
	if err != nil {
		return Result{}, err
	}
	level := core.EqualMBAShare(len(models))
	allocs := make([]machine.Alloc, len(models))
	for i := range models {
		allocs[i] = machine.Alloc{CBM: masks[i], MBALevel: level}
	}
	return evaluate(cfg, models, allocs)
}

// None is the unpartitioned baseline: every application shares all ways
// unthrottled, contending through the occupancy and bandwidth models.
// Figures 4–6 normalize to it.
type None struct{}

// Name implements Policy.
func (None) Name() string { return "None" }

// Run implements Policy.
func (None) Run(cfg machine.Config, models []machine.AppModel) (Result, error) {
	allocs := make([]machine.Alloc, len(models))
	for i := range models {
		allocs[i] = machine.Alloc{CBM: cfg.FullMask(), MBALevel: membw.MaxLevel}
	}
	return evaluate(cfg, models, allocs)
}

// ST is the static-oracle policy (§6.1): it exhaustively searches way
// compositions crossed with a coarse MBA grid — the offline-profiled
// "best static state" the paper compares against — and keeps the state
// with the lowest unfairness.
type ST struct {
	// MBAGrid is the set of MBA levels searched per application. Empty
	// selects a default that keeps the search tractable at six apps.
	MBAGrid []int
}

// Name implements Policy.
func (ST) Name() string { return "ST" }

// Run implements Policy.
func (s ST) Run(cfg machine.Config, models []machine.AppModel) (Result, error) {
	n := len(models)
	if n == 0 {
		return Result{}, fmt.Errorf("policies: empty mix")
	}
	grid := s.MBAGrid
	if len(grid) == 0 {
		if n <= 4 {
			grid = []int{10, 30, 60, 100}
		} else {
			grid = []int{10, 50, 100}
		}
	}
	for _, l := range grid {
		if err := membw.ValidateLevel(l); err != nil {
			return Result{}, err
		}
	}
	// The exhaustive search never revisits a state *within* one run, but
	// experiment grids and benchmark iterations re-run the same mixes, so
	// the per-process shared L2 turns repeat searches into lookups. The
	// bounded eviction keeps the ~31k-state sweep from thrashing the
	// table, and the SolveSession below hoists the model digests so each
	// scored state costs O(apps) key appends.
	m, err := machine.New(cfg, machine.WithSolveCache())
	if err != nil {
		return Result{}, err
	}
	solo := make([]float64, n)
	for i, model := range models {
		p, err := m.SoloPerf(model)
		if err != nil {
			return Result{}, err
		}
		solo[i] = p.IPS
	}

	best := Result{Unfairness: -1}
	counts := make([]int, n)
	mbaIdx := make([]int, n)
	// Scratch reused across the tens of thousands of scored states; the
	// best state's slices are copied out before the scratch is reused.
	allocs := make([]machine.Alloc, n)
	slowdowns := make([]float64, n)
	ips := make([]float64, n)
	masks := make([]uint64, n)
	perfs := make([]machine.Perf, n)
	session := m.NewSolveSession(models)
	var search func(app, remaining int) error
	scoreState := func() error {
		masks, err := machine.AssignContiguousWaysInto(masks, counts, 0, cfg.LLCWays)
		if err != nil {
			return err
		}
		for i := range allocs {
			allocs[i] = machine.Alloc{CBM: masks[i], MBALevel: grid[mbaIdx[i]]}
		}
		if err := session.SolveInto(perfs, allocs); err != nil {
			return err
		}
		for i := range perfs {
			slowdowns[i] = solo[i] / perfs[i].IPS
			ips[i] = perfs[i].IPS
		}
		u, err := fairness.Unfairness(slowdowns)
		if err != nil {
			return err
		}
		if best.Unfairness < 0 || u < best.Unfairness {
			tp, err := fairness.Throughput(ips)
			if err != nil {
				return err
			}
			names := make([]string, n)
			for i, model := range models {
				names[i] = model.Name
			}
			best = Result{
				Names:      names,
				Allocs:     append([]machine.Alloc(nil), allocs...),
				Slowdowns:  append([]float64(nil), slowdowns...),
				Unfairness: u,
				Throughput: tp,
			}
		}
		return nil
	}
	var sweepMBA func(app int) error
	sweepMBA = func(app int) error {
		if app == n {
			return scoreState()
		}
		for j := range grid {
			mbaIdx[app] = j
			if err := sweepMBA(app + 1); err != nil {
				return err
			}
		}
		return nil
	}
	search = func(app, remaining int) error {
		if app == n-1 {
			counts[app] = remaining
			return sweepMBA(0)
		}
		// Leave at least one way per remaining application.
		for w := 1; w <= remaining-(n-1-app); w++ {
			counts[app] = w
			if err := search(app+1, remaining-w); err != nil {
				return err
			}
		}
		return nil
	}
	if err := search(0, cfg.LLCWays); err != nil {
		return Result{}, err
	}
	if best.Unfairness < 0 {
		return Result{}, fmt.Errorf("policies: ST search found no state")
	}
	return best, nil
}

// Dynamic runs the CoPart manager (optionally with one axis frozen) and
// evaluates the state it converges to. It implements the paper's CoPart,
// CAT-only, and MBA-only policies.
type Dynamic struct {
	// Label is the policy name: "CoPart", "CAT-only", or "MBA-only".
	Label string
	// FreezeLLC / FreezeMBA pin the corresponding axis at the equal
	// split, as the respective baselines require.
	FreezeLLC bool
	FreezeMBA bool
	// Params override; zero value selects the paper defaults.
	Params core.Params
	// Features override; nil selects core.DefaultFeatures (ablations
	// pass explicit sets).
	Features *core.Features
	// Seed makes the run deterministic.
	Seed int64
	// MaxPeriods caps the exploration length; 0 selects a default.
	MaxPeriods int
}

// CoPart returns the full coordinated policy.
func CoPart(seed int64) *Dynamic { return &Dynamic{Label: "CoPart", Seed: seed} }

// CATOnly returns the dynamic-LLC / equal-bandwidth baseline.
func CATOnly(seed int64) *Dynamic {
	return &Dynamic{Label: "CAT-only", FreezeMBA: true, Seed: seed}
}

// MBAOnly returns the dynamic-bandwidth / equal-LLC baseline.
func MBAOnly(seed int64) *Dynamic {
	return &Dynamic{Label: "MBA-only", FreezeLLC: true, Seed: seed}
}

// Name implements Policy.
func (d *Dynamic) Name() string {
	if d.Label == "" {
		return "CoPart"
	}
	return d.Label
}

// Run implements Policy. It is safe for concurrent use: every call
// builds its own machine (with the solve cache — exploration revisits
// allocation states constantly, and each revisit skips a whole
// fixed-point solve) and seeds its own RNG from d.Seed.
func (d *Dynamic) Run(cfg machine.Config, models []machine.AppModel) (Result, error) {
	m, err := machine.New(cfg, machine.WithSolveCache())
	if err != nil {
		return Result{}, err
	}
	for _, model := range models {
		if err := m.AddApp(model); err != nil {
			return Result{}, err
		}
	}
	ref, err := workloads.StreamMissRates(m)
	if err != nil {
		return Result{}, err
	}
	params := d.Params
	if params.IsZero() {
		params = core.DefaultParams()
	}
	mgr, err := core.NewManager(m, params, ref, core.Envelope{LoWay: 0, Ways: cfg.LLCWays},
		rand.New(rand.NewSource(d.Seed)))
	if err != nil {
		return Result{}, err
	}
	mgr.FreezeLLC = d.FreezeLLC
	mgr.FreezeMBA = d.FreezeMBA
	if d.Features != nil {
		mgr.Features = *d.Features
	}
	if err := mgr.Profile(); err != nil {
		return Result{}, err
	}
	maxPeriods := d.MaxPeriods
	if maxPeriods == 0 {
		maxPeriods = 300
	}
	for i := 0; i < maxPeriods; i++ {
		done, err := mgr.ExploreStep()
		if err != nil {
			return Result{}, err
		}
		if done {
			break
		}
	}
	allocs := make([]machine.Alloc, len(models))
	for i, model := range models {
		a, err := m.Allocation(model.Name)
		if err != nil {
			return Result{}, err
		}
		allocs[i] = a
	}
	res, err := evaluate(cfg, models, allocs)
	if err != nil {
		return Result{}, err
	}
	return res, nil
}

// ExploreTime runs the dynamic policy and reports the mean wall-clock
// getNextSystemState duration (the Figure 16 overhead metric).
func (d *Dynamic) ExploreTime(cfg machine.Config, models []machine.AppModel) (time.Duration, error) {
	m, err := machine.New(cfg)
	if err != nil {
		return 0, err
	}
	for _, model := range models {
		if err := m.AddApp(model); err != nil {
			return 0, err
		}
	}
	ref, err := workloads.StreamMissRates(m)
	if err != nil {
		return 0, err
	}
	params := d.Params
	if params.IsZero() {
		params = core.DefaultParams()
	}
	mgr, err := core.NewManager(m, params, ref, core.Envelope{LoWay: 0, Ways: cfg.LLCWays},
		rand.New(rand.NewSource(d.Seed)))
	if err != nil {
		return 0, err
	}
	if err := mgr.Profile(); err != nil {
		return 0, err
	}
	maxPeriods := d.MaxPeriods
	if maxPeriods == 0 {
		maxPeriods = 300
	}
	for i := 0; i < maxPeriods; i++ {
		done, err := mgr.ExploreStep()
		if err != nil {
			return 0, err
		}
		if done {
			break
		}
	}
	if len(mgr.ExploreTimes) == 0 {
		return 0, fmt.Errorf("policies: no exploration steps executed")
	}
	var total time.Duration
	for _, t := range mgr.ExploreTimes {
		total += t
	}
	return total / time.Duration(len(mgr.ExploreTimes)), nil
}
