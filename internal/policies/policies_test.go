package policies

import (
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/workloads"
)

func mix(t *testing.T, kind workloads.MixKind, n int) []machine.AppModel {
	t.Helper()
	models, err := workloads.Mix(machine.DefaultConfig(), kind, n)
	if err != nil {
		t.Fatal(err)
	}
	return models
}

func TestPolicyNames(t *testing.T) {
	if (EQ{}).Name() != "EQ" || (None{}).Name() != "None" || (ST{}).Name() != "ST" {
		t.Error("static policy names wrong")
	}
	if CoPart(1).Name() != "CoPart" {
		t.Error("CoPart name")
	}
	if CATOnly(1).Name() != "CAT-only" || MBAOnly(1).Name() != "MBA-only" {
		t.Error("frozen-axis policy names wrong")
	}
	if (&Dynamic{}).Name() != "CoPart" {
		t.Error("empty label should default to CoPart")
	}
}

func TestEQProducesValidResult(t *testing.T) {
	cfg := machine.DefaultConfig()
	res, err := EQ{}.Run(cfg, mix(t, workloads.HLLC, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Slowdowns) != 4 || len(res.Allocs) != 4 || len(res.Names) != 4 {
		t.Fatalf("result shape: %+v", res)
	}
	for i, s := range res.Slowdowns {
		if s < 1-1e-6 {
			t.Errorf("slowdown[%d]=%v below 1", i, s)
		}
	}
	if res.Unfairness < 0 {
		t.Errorf("unfairness %v", res.Unfairness)
	}
	if res.Throughput <= 0 {
		t.Errorf("throughput %v", res.Throughput)
	}
	// EQ allocations: equal MBA, near-equal ways.
	for _, a := range res.Allocs {
		if a.MBALevel != res.Allocs[0].MBALevel {
			t.Error("EQ should assign one MBA level to all")
		}
		if w := a.Ways(); w < 2 || w > 3 {
			t.Errorf("EQ ways %d for 4 apps on 11 ways", w)
		}
	}
}

func TestNoneSharesEverything(t *testing.T) {
	cfg := machine.DefaultConfig()
	res, err := None{}.Run(cfg, mix(t, workloads.HBoth, 4))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Allocs {
		if a.CBM != cfg.FullMask() || a.MBALevel != 100 {
			t.Errorf("None should leave full overlapping allocations, got %+v", a)
		}
	}
}

func TestSTBeatsEQ(t *testing.T) {
	cfg := machine.DefaultConfig()
	for _, kind := range []workloads.MixKind{workloads.HLLC, workloads.HBW, workloads.HBoth} {
		models := mix(t, kind, 4)
		eq, err := EQ{}.Run(cfg, models)
		if err != nil {
			t.Fatal(err)
		}
		st, err := ST{}.Run(cfg, models)
		if err != nil {
			t.Fatal(err)
		}
		if st.Unfairness > eq.Unfairness+1e-9 {
			t.Errorf("%v: ST (an oracle) must not lose to EQ: %.4f vs %.4f",
				kind, st.Unfairness, eq.Unfairness)
		}
	}
}

func TestSTValidatesGrid(t *testing.T) {
	cfg := machine.DefaultConfig()
	if _, err := (ST{MBAGrid: []int{15}}).Run(cfg, mix(t, workloads.HLLC, 4)); err == nil {
		t.Error("invalid grid level should error")
	}
	if _, err := (ST{}).Run(cfg, nil); err == nil {
		t.Error("empty mix should error")
	}
}

func TestCoPartBeatsEQOnSensitiveMixes(t *testing.T) {
	cfg := machine.DefaultConfig()
	for _, kind := range []workloads.MixKind{workloads.HLLC, workloads.HBW, workloads.HBoth} {
		models := mix(t, kind, 4)
		eq, err := EQ{}.Run(cfg, models)
		if err != nil {
			t.Fatal(err)
		}
		cp, err := CoPart(7).Run(cfg, models)
		if err != nil {
			t.Fatal(err)
		}
		if cp.Unfairness >= eq.Unfairness {
			t.Errorf("%v: CoPart %.4f should beat EQ %.4f", kind, cp.Unfairness, eq.Unfairness)
		}
	}
}

func TestCATOnlyKeepsEqualMBA(t *testing.T) {
	cfg := machine.DefaultConfig()
	res, err := CATOnly(3).Run(cfg, mix(t, workloads.HLLC, 4))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Allocs {
		if a.MBALevel != res.Allocs[0].MBALevel {
			t.Errorf("CAT-only must keep MBA equal: %+v", res.Allocs)
		}
	}
}

func TestMBAOnlyKeepsEqualWays(t *testing.T) {
	cfg := machine.DefaultConfig()
	res, err := MBAOnly(3).Run(cfg, mix(t, workloads.HBW, 4))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Allocs {
		if w := a.Ways(); w < 2 || w > 3 {
			t.Errorf("MBA-only must keep ways at the equal split: %d", w)
		}
	}
}

func TestCoPartBeatsCATOnlyOnBWMix(t *testing.T) {
	// Figure 12's key comparison: CAT-only cannot help bandwidth-starved
	// mixes; the coordinated controller can.
	cfg := machine.DefaultConfig()
	models := mix(t, workloads.HBW, 4)
	cat, err := CATOnly(5).Run(cfg, models)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := CoPart(5).Run(cfg, models)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Unfairness > cat.Unfairness+1e-9 {
		t.Errorf("CoPart %.4f should not lose to CAT-only %.4f on H-BW",
			cp.Unfairness, cat.Unfairness)
	}
}

func TestCoPartBeatsMBAOnlyOnLLCMix(t *testing.T) {
	cfg := machine.DefaultConfig()
	models := mix(t, workloads.HLLC, 4)
	mba, err := MBAOnly(5).Run(cfg, models)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := CoPart(5).Run(cfg, models)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Unfairness > mba.Unfairness+1e-9 {
		t.Errorf("CoPart %.4f should not lose to MBA-only %.4f on H-LLC",
			cp.Unfairness, mba.Unfairness)
	}
}

func TestDynamicExploreTime(t *testing.T) {
	cfg := machine.DefaultConfig()
	d, err := CoPart(11).ExploreTime(cfg, mix(t, workloads.HBoth, 4))
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || d > 100*time.Millisecond {
		t.Errorf("implausible exploration time %v", d)
	}
}

func TestPoliciesRejectInvalidConfig(t *testing.T) {
	bad := machine.DefaultConfig()
	bad.Cores = 0
	models := mix(t, workloads.HLLC, 4)
	for _, p := range []Policy{EQ{}, ST{}, None{}, UCP{}, CoPart(1)} {
		if _, err := p.Run(bad, models); err == nil {
			t.Errorf("%s: invalid config should error", p.Name())
		}
	}
	if _, err := CoPart(1).ExploreTime(bad, models); err == nil {
		t.Error("ExploreTime with invalid config should error")
	}
}

func TestPoliciesRejectOversizedMix(t *testing.T) {
	cfg := machine.DefaultConfig()
	// 12 apps exceed the 11 CLOS-minimum ways.
	var models []machine.AppModel
	base := mix(t, workloads.HLLC, 4)
	for i := 0; i < 3; i++ {
		for _, m := range base {
			m.Name = m.Name + string(rune('a'+i))
			m.Cores = 1
			models = append(models, m)
		}
	}
	if _, err := (EQ{}).Run(cfg, models); err == nil {
		t.Error("EQ with more apps than ways should error")
	}
	if _, err := (UCP{}).Run(cfg, models); err == nil {
		t.Error("UCP with more apps than ways should error")
	}
}

func TestDynamicDeterministicWithSeed(t *testing.T) {
	cfg := machine.DefaultConfig()
	models := mix(t, workloads.MBoth, 4)
	a, err := CoPart(99).Run(cfg, models)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CoPart(99).Run(cfg, models)
	if err != nil {
		t.Fatal(err)
	}
	if a.Unfairness != b.Unfairness {
		t.Errorf("same seed diverged: %v vs %v", a.Unfairness, b.Unfairness)
	}
	for i := range a.Allocs {
		if a.Allocs[i] != b.Allocs[i] {
			t.Errorf("alloc %d diverged", i)
		}
	}
}
