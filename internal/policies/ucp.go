package policies

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
)

// UCP implements utility-based cache partitioning in the style of
// Qureshi & Patt (MICRO 2006), the paper's reference [34] — an extension
// baseline beyond the paper's own comparison set. UCP assigns LLC ways
// greedily by marginal utility: each step gives the next way to the
// application whose miss *rate* would drop the most, which maximizes
// aggregate hit throughput but is fairness-oblivious. Memory bandwidth is
// split equally (UCP manages only the cache).
//
// The contrast with CoPart is instructive: UCP often matches CoPart on
// LLC-dominated mixes (the fair allocation is also the high-utility one
// once working sets fit) but falls behind on fairness for mixes where a
// high-utility application monopolizes ways that a slower one needs.
type UCP struct{}

// Name implements Policy.
func (UCP) Name() string { return "UCP" }

// Run implements Policy.
func (UCP) Run(cfg machine.Config, models []machine.AppModel) (Result, error) {
	n := len(models)
	if n == 0 {
		return Result{}, fmt.Errorf("policies: empty mix")
	}
	if n > cfg.LLCWays {
		return Result{}, fmt.Errorf("policies: %d apps exceed %d ways", n, cfg.LLCWays)
	}
	m, err := machine.New(cfg)
	if err != nil {
		return Result{}, err
	}
	// Per-application access rates at full resources seed the utility
	// estimates (UCP's UMON sampling, replaced by the model's oracle).
	accRate := make([]float64, n)
	for i, model := range models {
		p, err := m.SoloPerf(model)
		if err != nil {
			return Result{}, err
		}
		accRate[i] = p.AccessRate
	}
	missRate := func(app, ways int) float64 {
		mr := models[app].MissRatio(float64(ways) * cfg.WayBytes)
		return accRate[app] * mr
	}
	counts := make([]int, n)
	for i := range counts {
		counts[i] = 1
	}
	for assigned := n; assigned < cfg.LLCWays; assigned++ {
		best, bestGain := -1, -1.0
		for i := range counts {
			gain := missRate(i, counts[i]) - missRate(i, counts[i]+1)
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		counts[best]++
	}
	masks, err := machine.AssignContiguousWays(counts, 0, cfg.LLCWays)
	if err != nil {
		return Result{}, err
	}
	level := core.EqualMBAShare(n)
	allocs := make([]machine.Alloc, n)
	for i := range allocs {
		allocs[i] = machine.Alloc{CBM: masks[i], MBALevel: level}
	}
	return evaluate(cfg, models, allocs)
}
