package policies

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/workloads"
)

func TestUCPName(t *testing.T) {
	if (UCP{}).Name() != "UCP" {
		t.Error("name")
	}
}

func TestUCPValidation(t *testing.T) {
	cfg := machine.DefaultConfig()
	if _, err := (UCP{}).Run(cfg, nil); err == nil {
		t.Error("empty mix should error")
	}
	small := cfg
	small.LLCWays = 2
	models := mix(t, workloads.HLLC, 4)
	if _, err := (UCP{}).Run(small, models); err == nil {
		t.Error("more apps than ways should error")
	}
}

func TestUCPAssignsWaysByUtility(t *testing.T) {
	cfg := machine.DefaultConfig()
	// H-LLC: WN (7.5MB), WS (5.5MB), RT (3.5MB), SW (0.5MB). UCP should
	// give the cache-hungry apps their working sets and starve SW.
	res, err := (UCP{}).Run(cfg, mix(t, workloads.HLLC, 4))
	if err != nil {
		t.Fatal(err)
	}
	ways := map[string]int{}
	for i, name := range res.Names {
		ways[name] = res.Allocs[i].Ways()
	}
	if ways["SW"] != 1 {
		t.Errorf("the insensitive app should hold the minimum: %v", ways)
	}
	if ways["WN"] < 4 {
		t.Errorf("WN needs 4 ways for its 7.5MB set, got %d", ways["WN"])
	}
	if ways["WS"] < 3 || ways["RT"] < 2 {
		t.Errorf("working sets not covered: %v", ways)
	}
}

func TestUCPImprovesThroughputOverEQ(t *testing.T) {
	cfg := machine.DefaultConfig()
	models := mix(t, workloads.HLLC, 4)
	eq, err := EQ{}.Run(cfg, models)
	if err != nil {
		t.Fatal(err)
	}
	ucp, err := UCP{}.Run(cfg, models)
	if err != nil {
		t.Fatal(err)
	}
	if ucp.Throughput < eq.Throughput {
		t.Errorf("UCP throughput %.3g should be at least EQ's %.3g",
			ucp.Throughput, eq.Throughput)
	}
}

func TestCoPartNoWorseThanUCPOnFairness(t *testing.T) {
	// UCP is fairness-oblivious; across the sensitive mixes the
	// fairness-driven controller must not lose to it on its own metric.
	cfg := machine.DefaultConfig()
	for _, kind := range []workloads.MixKind{workloads.HBW, workloads.HBoth, workloads.MBoth} {
		models := mix(t, kind, 4)
		ucp, err := UCP{}.Run(cfg, models)
		if err != nil {
			t.Fatal(err)
		}
		cp, err := CoPart(3).Run(cfg, models)
		if err != nil {
			t.Fatal(err)
		}
		if cp.Unfairness > ucp.Unfairness*1.05 {
			t.Errorf("%v: CoPart unfairness %.4f should not lose to UCP %.4f",
				kind, cp.Unfairness, ucp.Unfairness)
		}
	}
}
