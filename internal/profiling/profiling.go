// Package profiling wires the standard runtime profilers into the
// command-line tools. The heavy commands (evaluate, characterize) accept
// -cpuprofile/-memprofile flags so the experiment engine's hot paths can
// be inspected with `go tool pprof` without a test harness.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (when non-empty) and arranges
// for a heap profile to be written to memPath (when non-empty). The
// returned stop function must be called exactly once, after the workload
// finishes; it flushes both profiles. Either path may be empty, in which
// case that profile is skipped and stop is still safe to call.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			// Get up-to-date allocation statistics before snapshotting.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			return f.Close()
		}
		return nil
	}, nil
}
