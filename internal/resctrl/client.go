package resctrl

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Client drives a resctrl-shaped directory tree. Point it at the real
// mount (/sys/fs/resctrl) on CAT/MBA hardware, or at a tree created by
// NewSimTree for simulation — the client code path is identical, which is
// what makes the reproduction's controller deployable on real machines.
type Client struct {
	root string
	info Info
}

// Open reads the info/ directory under root and returns a client.
func Open(root string) (*Client, error) {
	info, err := readInfo(root)
	if err != nil {
		return nil, err
	}
	if err := info.Validate(); err != nil {
		return nil, err
	}
	return &Client{root: root, info: info}, nil
}

// Root returns the tree's root path.
func (c *Client) Root() string { return c.root }

// Info returns the hardware limits read at Open time.
func (c *Client) Info() Info { return c.info }

func readInfo(root string) (Info, error) {
	var in Info
	var err error
	if in.CBMMask, err = readHexFile(filepath.Join(root, "info", "L3", "cbm_mask")); err != nil {
		return Info{}, err
	}
	if in.MinCBMBits, err = readIntFile(filepath.Join(root, "info", "L3", "min_cbm_bits")); err != nil {
		return Info{}, err
	}
	if in.NumCLOSIDs, err = readIntFile(filepath.Join(root, "info", "L3", "num_closids")); err != nil {
		return Info{}, err
	}
	if in.MBAMin, err = readIntFile(filepath.Join(root, "info", "MB", "min_bandwidth")); err != nil {
		return Info{}, err
	}
	if in.MBAGran, err = readIntFile(filepath.Join(root, "info", "MB", "bandwidth_gran")); err != nil {
		return Info{}, err
	}
	// Monitoring capabilities are optional (hardware without CMT/MBM has
	// no info/L3_MON directory).
	if n, err := readIntFile(filepath.Join(root, "info", "L3_MON", "num_rmids")); err == nil {
		in.NumRMIDs = n
		if b, err := os.ReadFile(filepath.Join(root, "info", "L3_MON", "mon_features")); err == nil {
			for _, f := range strings.Fields(string(b)) {
				in.MonFeatures = append(in.MonFeatures, f)
			}
		}
	}
	// Cache domains are those listed in the root group's schemata.
	s, err := readSchemataFile(filepath.Join(root, "schemata"))
	if err != nil {
		return Info{}, err
	}
	ids := map[int]bool{}
	for id := range s.L3 {
		ids[id] = true
	}
	for id := range s.MB {
		ids[id] = true
	}
	for id := range ids {
		in.CacheIDs = append(in.CacheIDs, id)
	}
	sort.Ints(in.CacheIDs)
	return in, nil
}

func readHexFile(path string) (uint64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("resctrl: %w", err)
	}
	v, err := strconv.ParseUint(strings.TrimSpace(string(b)), 16, 64)
	if err != nil {
		return 0, fmt.Errorf("resctrl: %s: %v", path, err)
	}
	return v, nil
}

func readIntFile(path string) (int, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("resctrl: %w", err)
	}
	v, err := strconv.Atoi(strings.TrimSpace(string(b)))
	if err != nil {
		return 0, fmt.Errorf("resctrl: %s: %v", path, err)
	}
	return v, nil
}

func readSchemataFile(path string) (Schemata, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Schemata{}, fmt.Errorf("resctrl: %w", err)
	}
	return ParseSchemata(string(b))
}

// groupDir resolves a control-group name to its directory. The empty name
// addresses the root (default) group.
func (c *Client) groupDir(group string) (string, error) {
	if group == "" {
		return c.root, nil
	}
	if strings.ContainsAny(group, "/\\") || group == "." || group == ".." || group == "info" {
		return "", fmt.Errorf("resctrl: %w %q", ErrInvalidGroup, group)
	}
	return filepath.Join(c.root, group), nil
}

// CreateGroup makes a new control group (one CLOS). The kernel enforces
// the CLOSID limit; the client mirrors that check.
func (c *Client) CreateGroup(group string) error {
	dir, err := c.groupDir(group)
	if err != nil {
		return err
	}
	if group == "" {
		return fmt.Errorf("resctrl: cannot create the root group")
	}
	groups, err := c.Groups()
	if err != nil {
		return err
	}
	// The root group occupies one CLOSID.
	if len(groups)+1 >= c.info.NumCLOSIDs {
		return fmt.Errorf("resctrl: CLOSID limit %d reached", c.info.NumCLOSIDs)
	}
	if err := os.Mkdir(dir, 0o755); err != nil {
		return fmt.Errorf("resctrl: %w", err)
	}
	// A fresh group starts with the root group's schemata (full masks),
	// as the kernel does.
	rootSchemata, err := readSchemataFile(filepath.Join(c.root, "schemata"))
	if err != nil {
		return err
	}
	for _, f := range []struct{ name, content string }{
		{"schemata", rootSchemata.Format()},
		{"tasks", ""},
		{"cpus", ""},
	} {
		if err := os.WriteFile(filepath.Join(dir, f.name), []byte(f.content), 0o644); err != nil {
			return fmt.Errorf("resctrl: %w", err)
		}
	}
	return nil
}

// DeleteGroup removes a control group; its tasks fall back to the root
// group (on the real kernel this happens implicitly on rmdir).
func (c *Client) DeleteGroup(group string) error {
	if group == "" {
		return fmt.Errorf("resctrl: cannot delete the root group")
	}
	dir, err := c.groupDir(group)
	if err != nil {
		return err
	}
	if _, err := os.Stat(dir); err != nil {
		return fmt.Errorf("resctrl: %w", err)
	}
	return os.RemoveAll(dir)
}

// Groups lists the non-root control groups, sorted.
func (c *Client) Groups() ([]string, error) {
	entries, err := os.ReadDir(c.root)
	if err != nil {
		return nil, fmt.Errorf("resctrl: %w", err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() && e.Name() != "info" && e.Name() != "mon_groups" && e.Name() != "mon_data" {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// ReadSchemata reads and parses a group's schemata.
func (c *Client) ReadSchemata(group string) (Schemata, error) {
	dir, err := c.groupDir(group)
	if err != nil {
		return Schemata{}, err
	}
	return readSchemataFile(filepath.Join(dir, "schemata"))
}

// WriteSchemata validates s against the hardware limits and writes it. It
// performs a read-modify-write: resources absent from s keep their
// current values (matching how the kernel treats partial writes).
func (c *Client) WriteSchemata(group string, s Schemata) error {
	if err := c.info.CheckSchemata(s); err != nil {
		return err
	}
	dir, err := c.groupDir(group)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "schemata")
	cur, err := readSchemataFile(path)
	if err != nil {
		return err
	}
	for id, mask := range s.L3 {
		cur.L3[id] = mask
	}
	for id, level := range s.MB {
		cur.MB[id] = level
	}
	return os.WriteFile(path, []byte(cur.Format()), 0o644)
}

// AddTask assigns a task (pid) to a group by appending to its tasks file.
func (c *Client) AddTask(group string, pid int) error {
	if pid <= 0 {
		return fmt.Errorf("resctrl: invalid pid %d", pid)
	}
	dir, err := c.groupDir(group)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(dir, "tasks"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("resctrl: %w", err)
	}
	defer f.Close()
	if _, err := fmt.Fprintf(f, "%d\n", pid); err != nil {
		return fmt.Errorf("resctrl: %w", err)
	}
	return f.Close()
}

// Tasks lists the pids assigned to a group.
func (c *Client) Tasks(group string) ([]int, error) {
	dir, err := c.groupDir(group)
	if err != nil {
		return nil, err
	}
	b, err := os.ReadFile(filepath.Join(dir, "tasks"))
	if err != nil {
		return nil, fmt.Errorf("resctrl: %w", err)
	}
	var pids []int
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		pid, err := strconv.Atoi(line)
		if err != nil {
			return nil, fmt.Errorf("resctrl: bad pid %q in tasks", line)
		}
		pids = append(pids, pid)
	}
	return pids, nil
}

// SetCPUs writes a group's cpus list (e.g. "0-3", as the kernel accepts).
func (c *Client) SetCPUs(group, cpuList string) error {
	dir, err := c.groupDir(group)
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "cpus"), []byte(cpuList+"\n"), 0o644)
}

// CPUs reads a group's cpus list.
func (c *Client) CPUs(group string) (string, error) {
	dir, err := c.groupDir(group)
	if err != nil {
		return "", err
	}
	b, err := os.ReadFile(filepath.Join(dir, "cpus"))
	if err != nil {
		return "", fmt.Errorf("resctrl: %w", err)
	}
	return strings.TrimSpace(string(b)), nil
}
