package resctrl

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/machine"
)

// newErrTree builds a sim tree with one control group for the error-path
// tests.
func newErrTree(t *testing.T) (*Client, string) {
	t.Helper()
	dir := t.TempDir()
	c, err := NewSimTree(dir, machine.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateGroup("app"); err != nil {
		t.Fatal(err)
	}
	return c, dir
}

func TestReadSchemataMissingFile(t *testing.T) {
	c, dir := newErrTree(t)
	if err := os.Remove(filepath.Join(dir, "app", "schemata")); err != nil {
		t.Fatal(err)
	}
	_, err := c.ReadSchemata("app")
	if err == nil {
		t.Fatal("reading a missing schemata file must error")
	}
	if !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("error %v should wrap fs.ErrNotExist so callers can branch on it", err)
	}
}

func TestWriteSchemataToRemovedGroup(t *testing.T) {
	c, _ := newErrTree(t)
	if err := c.DeleteGroup("app"); err != nil {
		t.Fatal(err)
	}
	err := c.WriteSchemata("app", Schemata{MB: map[int]int{0: 50}})
	if err == nil {
		t.Fatal("writing to a removed group must error")
	}
	if !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("error %v should wrap fs.ErrNotExist", err)
	}
}

func TestParseSchemataMalformed(t *testing.T) {
	cases := []string{
		"L3;0=7ff",     // missing ':'
		"L3:0=zz",      // bad CBM hex
		"MB:0=fast",    // bad MB integer
		"L3:0",         // missing '='
		"L3:x=7ff",     // bad cache id
		"L3:0=1;0=3",   // duplicate cache id
		"MB:0=50;0=60", // duplicate cache id
	}
	for _, text := range cases {
		_, err := ParseSchemata(text)
		if err == nil {
			t.Errorf("ParseSchemata(%q) should error", text)
			continue
		}
		if !errors.Is(err, ErrMalformedSchemata) {
			t.Errorf("ParseSchemata(%q) error %v should wrap ErrMalformedSchemata", text, err)
		}
	}
}

func TestMalformedSchemataFileSurfacesTypedError(t *testing.T) {
	c, dir := newErrTree(t)
	if err := os.WriteFile(filepath.Join(dir, "app", "schemata"),
		[]byte("L3:0=notahexmask\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := c.ReadSchemata("app")
	if !errors.Is(err, ErrMalformedSchemata) {
		t.Errorf("error %v should wrap ErrMalformedSchemata", err)
	}
	// A malformed current schemata also fails the read-modify-write.
	err = c.WriteSchemata("app", Schemata{MB: map[int]int{0: 50}})
	if !errors.Is(err, ErrMalformedSchemata) {
		t.Errorf("write over malformed schemata: error %v should wrap ErrMalformedSchemata", err)
	}
}

func TestInvalidGroupNameTypedError(t *testing.T) {
	c, _ := newErrTree(t)
	for _, group := range []string{"a/b", "..", ".", "info", `a\b`} {
		if _, err := c.ReadSchemata(group); !errors.Is(err, ErrInvalidGroup) {
			t.Errorf("ReadSchemata(%q) error %v should wrap ErrInvalidGroup", group, err)
		}
		if err := c.CreateGroup(group); !errors.Is(err, ErrInvalidGroup) {
			t.Errorf("CreateGroup(%q) error %v should wrap ErrInvalidGroup", group, err)
		}
	}
}
