package resctrl_test

import (
	"fmt"

	"repro/internal/resctrl"
)

func ExampleParseSchemata() {
	s, _ := resctrl.ParseSchemata("L3:0=7ff\nMB:0=40\n")
	fmt.Printf("ways mask %#x, MBA %d%%\n", s.L3[0], s.MB[0])
	// Output: ways mask 0x7ff, MBA 40%
}

func ExampleSchemata_Format() {
	s := resctrl.Schemata{
		L3: map[int]uint64{0: 0x00f},
		MB: map[int]int{0: 100},
	}
	fmt.Print(s.Format())
	// Output:
	// L3:0=f
	// MB:0=100
}

func ExampleInfo_CheckSchemata() {
	info := resctrl.Info{
		CBMMask: 0x7ff, MinCBMBits: 1, NumCLOSIDs: 16,
		MBAMin: 10, MBAGran: 10, CacheIDs: []int{0},
	}
	bad := resctrl.Schemata{L3: map[int]uint64{0: 0b101}}
	fmt.Println(info.CheckSchemata(bad))
	// Output: resctrl: cache 0: CBM 5 is not contiguous
}
