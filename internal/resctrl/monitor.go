package resctrl

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/machine"
)

// This file implements resctrl's monitoring side (Intel CMT/MBM): each
// control group exposes, per cache domain,
//
//	<group>/mon_data/mon_L3_00/llc_occupancy    (bytes resident in L3)
//	<group>/mon_data/mon_L3_00/mbm_total_bytes  (cumulative DRAM traffic)
//	<group>/mon_data/mon_L3_00/mbm_local_bytes
//
// The paper reads its three PMCs through PAPI rather than MBM, but a
// production CoPart deployment would use MBM for the traffic side (no
// per-process perf fds needed); the emulation keeps that path testable.

// MonData is one group's monitoring snapshot for one cache domain.
type MonData struct {
	// LLCOccupancy is the group's resident L3 bytes.
	LLCOccupancy uint64
	// MBMTotalBytes is cumulative DRAM traffic (reads + writebacks).
	MBMTotalBytes uint64
	// MBMLocalBytes is the local-socket portion (equal to total on the
	// single-socket machine).
	MBMLocalBytes uint64
}

// monDir returns the monitoring directory for (group, domain).
func (c *Client) monDir(group string, domain int) (string, error) {
	dir, err := c.groupDir(group)
	if err != nil {
		return "", err
	}
	return filepath.Join(dir, "mon_data", fmt.Sprintf("mon_L3_%02d", domain)), nil
}

// ReadMonData reads a group's monitoring counters for a cache domain.
func (c *Client) ReadMonData(group string, domain int) (MonData, error) {
	dir, err := c.monDir(group, domain)
	if err != nil {
		return MonData{}, err
	}
	var d MonData
	for _, f := range []struct {
		name string
		dst  *uint64
	}{
		{"llc_occupancy", &d.LLCOccupancy},
		{"mbm_total_bytes", &d.MBMTotalBytes},
		{"mbm_local_bytes", &d.MBMLocalBytes},
	} {
		b, err := os.ReadFile(filepath.Join(dir, f.name))
		if err != nil {
			return MonData{}, fmt.Errorf("resctrl: %w", err)
		}
		v, err := strconv.ParseUint(strings.TrimSpace(string(b)), 10, 64)
		if err != nil {
			return MonData{}, fmt.Errorf("resctrl: %s/%s: %v", dir, f.name, err)
		}
		*f.dst = v
	}
	return d, nil
}

// writeMonData materializes a group's monitoring files (sim tree only;
// on real hardware the kernel provides them).
func (c *Client) writeMonData(group string, domain int, d MonData) error {
	dir, err := c.monDir(group, domain)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("resctrl: %w", err)
	}
	for _, f := range []struct {
		name string
		val  uint64
	}{
		{"llc_occupancy", d.LLCOccupancy},
		{"mbm_total_bytes", d.MBMTotalBytes},
		{"mbm_local_bytes", d.MBMLocalBytes},
	} {
		if err := os.WriteFile(filepath.Join(dir, f.name),
			[]byte(strconv.FormatUint(f.val, 10)+"\n"), 0o644); err != nil {
			return fmt.Errorf("resctrl: %w", err)
		}
	}
	return nil
}

// SyncMonData refreshes every group's monitoring files from the machine
// simulator: occupancy from the solved capacity shares, MBM bytes from
// the cumulative granted-traffic counters. Group names must match
// application names (as with ApplyToMachine).
func SyncMonData(c *Client, m *machine.Machine) error {
	groups, err := c.Groups()
	if err != nil {
		return err
	}
	for _, g := range groups {
		occ, err := m.Occupancy(g)
		if err != nil {
			return fmt.Errorf("resctrl: mon sync for %s: %w", g, err)
		}
		counters, err := m.ReadCounters(g)
		if err != nil {
			return fmt.Errorf("resctrl: mon sync for %s: %w", g, err)
		}
		model, err := m.Model(g)
		if err != nil {
			return fmt.Errorf("resctrl: mon sync for %s: %w", g, err)
		}
		bytes := uint64(counters.MemoryBytes)
		if err := c.writeMonData(g, model.Socket, MonData{
			LLCOccupancy:  uint64(occ),
			MBMTotalBytes: bytes,
			MBMLocalBytes: bytes, // single-socket machine: all traffic is local
		}); err != nil {
			return err
		}
	}
	return nil
}
