package resctrl

import (
	"testing"
	"time"

	"repro/internal/machine"
)

func monHarness(t *testing.T) (*Client, *machine.Machine) {
	t.Helper()
	cfg := machine.DefaultConfig()
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewSimTree(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range []string{"hot", "stream"} {
		model := machine.AppModel{
			Name: name, Cores: 4, CPIBase: 0.8, AccPerInstr: 0.02,
			Hot:        []machine.WSComponent{{Bytes: 6 << 20, Weight: 0.8 - float64(i)*0.7, MLP: 1}},
			StreamFrac: 0.2 + float64(i)*0.7,
			MLP:        8,
		}
		if err := m.AddApp(model); err != nil {
			t.Fatal(err)
		}
		if err := c.CreateGroup(name); err != nil {
			t.Fatal(err)
		}
	}
	return c, m
}

func TestSimTreeAdvertisesMonitoring(t *testing.T) {
	c, _ := monHarness(t)
	in := c.Info()
	if !in.SupportsMonitoring() {
		t.Fatal("sim tree should advertise CMT/MBM")
	}
	if in.NumRMIDs != 224 {
		t.Errorf("num_rmids=%d", in.NumRMIDs)
	}
	want := map[string]bool{"llc_occupancy": true, "mbm_total_bytes": true, "mbm_local_bytes": true}
	for _, f := range in.MonFeatures {
		delete(want, f)
	}
	if len(want) != 0 {
		t.Errorf("missing mon features: %v", want)
	}
}

func TestSyncAndReadMonData(t *testing.T) {
	c, m := monHarness(t)
	if err := m.Step(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := SyncMonData(c, m); err != nil {
		t.Fatal(err)
	}
	hot, err := c.ReadMonData("hot", 0)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := c.ReadMonData("stream", 0)
	if err != nil {
		t.Fatal(err)
	}
	// The cache-friendly group holds occupancy; the streamer moves bytes.
	if hot.LLCOccupancy == 0 {
		t.Error("hot group should occupy cache")
	}
	cfg := m.Config()
	total := hot.LLCOccupancy + stream.LLCOccupancy
	if total > uint64(cfg.WayBytes)*uint64(cfg.LLCWays)+1 {
		t.Errorf("occupancies %d exceed the cache", total)
	}
	if stream.MBMTotalBytes <= hot.MBMTotalBytes {
		t.Errorf("streamer should move more bytes: %d vs %d",
			stream.MBMTotalBytes, hot.MBMTotalBytes)
	}
	if stream.MBMLocalBytes != stream.MBMTotalBytes {
		t.Error("single socket: local must equal total")
	}

	// MBM counters are cumulative: another step must grow them.
	if err := m.Step(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := SyncMonData(c, m); err != nil {
		t.Fatal(err)
	}
	stream2, err := c.ReadMonData("stream", 0)
	if err != nil {
		t.Fatal(err)
	}
	if stream2.MBMTotalBytes <= stream.MBMTotalBytes {
		t.Error("mbm_total_bytes must be cumulative")
	}
}

func TestReadMonDataErrors(t *testing.T) {
	c, m := monHarness(t)
	if _, err := c.ReadMonData("hot", 0); err == nil {
		t.Error("reading before any sync should error (no mon files yet)")
	}
	if err := SyncMonData(c, m); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadMonData("ghost", 0); err == nil {
		t.Error("unknown group should error")
	}
	if _, err := c.ReadMonData("hot", 3); err == nil {
		t.Error("unknown domain should error")
	}
}

func TestSyncMonDataUnknownGroup(t *testing.T) {
	cfg := machine.DefaultConfig()
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewSimTree(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateGroup("orphan"); err != nil {
		t.Fatal(err)
	}
	if err := SyncMonData(c, m); err == nil {
		t.Error("group without an app should error")
	}
}
