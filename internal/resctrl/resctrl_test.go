package resctrl

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/machine"
)

func testInfo() Info {
	return Info{
		CBMMask:    0x7ff,
		MinCBMBits: 1,
		NumCLOSIDs: 16,
		MBAMin:     10,
		MBAGran:    10,
		CacheIDs:   []int{0, 1},
	}
}

func TestParseSchemata(t *testing.T) {
	s, err := ParseSchemata("L3:0=7ff;1=3f\nMB:0=100;1=50\n")
	if err != nil {
		t.Fatal(err)
	}
	if s.L3[0] != 0x7ff || s.L3[1] != 0x3f {
		t.Errorf("L3=%v", s.L3)
	}
	if s.MB[0] != 100 || s.MB[1] != 50 {
		t.Errorf("MB=%v", s.MB)
	}
}

func TestParseSchemataWhitespaceAndUnknown(t *testing.T) {
	s, err := ParseSchemata("  L3: 0=ff ; 1=f \nL2:0=3\n\nMB:0=70\n")
	if err != nil {
		t.Fatal(err)
	}
	if s.L3[0] != 0xff || s.L3[1] != 0xf || s.MB[0] != 70 {
		t.Errorf("parsed %+v", s)
	}
	if len(s.Other) != 1 || s.Other[0] != "L2:0=3" {
		t.Errorf("unknown lines not preserved: %v", s.Other)
	}
}

func TestParseSchemataErrors(t *testing.T) {
	for _, bad := range []string{
		"L3 0=7ff",     // missing colon
		"L3:0",         // missing '='
		"L3:x=7ff",     // bad id
		"L3:0=zz",      // bad hex
		"MB:0=abc",     // bad int
		"L3:0=1;0=2",   // duplicate id
		"MB:0=10;0=20", // duplicate id
	} {
		if _, err := ParseSchemata(bad); err == nil {
			t.Errorf("ParseSchemata(%q) should error", bad)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	orig := Schemata{
		L3:    map[int]uint64{0: 0x7ff, 1: 0x3f},
		MB:    map[int]int{0: 100, 1: 50},
		Other: []string{"L2:0=3"},
	}
	text := orig.Format()
	parsed, err := ParseSchemata(text)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.L3[0] != orig.L3[0] || parsed.L3[1] != orig.L3[1] {
		t.Errorf("L3 round trip: %v", parsed.L3)
	}
	if parsed.MB[0] != orig.MB[0] || parsed.MB[1] != orig.MB[1] {
		t.Errorf("MB round trip: %v", parsed.MB)
	}
	if len(parsed.Other) != 1 {
		t.Errorf("Other round trip: %v", parsed.Other)
	}
	if !strings.Contains(text, "L3:0=7ff;1=3f") {
		t.Errorf("format: %q", text)
	}
}

// Property: Format→Parse is the identity on valid schemata.
func TestSchemataRoundTripProperty(t *testing.T) {
	f := func(masks []uint16, levels []uint8) bool {
		s := Schemata{L3: map[int]uint64{}, MB: map[int]int{}}
		for i, m := range masks {
			if i >= 8 {
				break
			}
			s.L3[i] = uint64(m) + 1
		}
		for i, l := range levels {
			if i >= 8 {
				break
			}
			s.MB[i] = int(l%10+1) * 10
		}
		parsed, err := ParseSchemata(s.Format())
		if err != nil {
			return false
		}
		if len(parsed.L3) != len(s.L3) || len(parsed.MB) != len(s.MB) {
			return false
		}
		for id, v := range s.L3 {
			if parsed.L3[id] != v {
				return false
			}
		}
		for id, v := range s.MB {
			if parsed.MB[id] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestInfoValidate(t *testing.T) {
	if err := testInfo().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testInfo()
	bad.CBMMask = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero cbm_mask should error")
	}
	bad = testInfo()
	bad.MinCBMBits = 20
	if err := bad.Validate(); err == nil {
		t.Error("min_cbm_bits > ways should error")
	}
	bad = testInfo()
	bad.CacheIDs = nil
	if err := bad.Validate(); err == nil {
		t.Error("no cache domains should error")
	}
}

func TestCheckSchemata(t *testing.T) {
	in := testInfo()
	ok := Schemata{L3: map[int]uint64{0: 0x0f0}, MB: map[int]int{0: 50}}
	if err := in.CheckSchemata(ok); err != nil {
		t.Errorf("valid schemata rejected: %v", err)
	}
	for name, bad := range map[string]Schemata{
		"zero CBM":          {L3: map[int]uint64{0: 0}},
		"out of cbm_mask":   {L3: map[int]uint64{0: 0x800}},
		"non-contiguous":    {L3: map[int]uint64{0: 0b101}},
		"unknown domain L3": {L3: map[int]uint64{7: 1}},
		"MB too low":        {MB: map[int]int{0: 5}},
		"MB too high":       {MB: map[int]int{0: 110}},
		"MB off-granule":    {MB: map[int]int{0: 55}},
		"unknown domain MB": {MB: map[int]int{9: 50}},
	} {
		if err := in.CheckSchemata(bad); err == nil {
			t.Errorf("%s: should error", name)
		}
	}
	wide := testInfo()
	wide.MinCBMBits = 2
	if err := wide.CheckSchemata(Schemata{L3: map[int]uint64{0: 1}}); err == nil {
		t.Error("CBM below min_cbm_bits should error")
	}
}

func newSim(t *testing.T) *Client {
	t.Helper()
	c, err := NewSimTree(t.TempDir(), machine.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSimTreeInfo(t *testing.T) {
	c := newSim(t)
	in := c.Info()
	if in.CBMMask != 0x7ff {
		t.Errorf("cbm_mask=%x want 7ff (11 ways)", in.CBMMask)
	}
	if in.MBAMin != 10 || in.MBAGran != 10 {
		t.Errorf("MBA limits %d/%d", in.MBAMin, in.MBAGran)
	}
	if len(in.CacheIDs) != 1 || in.CacheIDs[0] != 0 {
		t.Errorf("cache ids %v", in.CacheIDs)
	}
}

func TestGroupLifecycle(t *testing.T) {
	c := newSim(t)
	if err := c.CreateGroup("app0"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateGroup("app1"); err != nil {
		t.Fatal(err)
	}
	groups, err := c.Groups()
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 || groups[0] != "app0" || groups[1] != "app1" {
		t.Errorf("Groups()=%v", groups)
	}
	// New groups inherit the root schemata (full masks).
	s, err := c.ReadSchemata("app0")
	if err != nil {
		t.Fatal(err)
	}
	if s.L3[0] != 0x7ff || s.MB[0] != 100 {
		t.Errorf("fresh group schemata %+v", s)
	}
	if err := c.DeleteGroup("app0"); err != nil {
		t.Fatal(err)
	}
	groups, _ = c.Groups()
	if len(groups) != 1 {
		t.Errorf("after delete: %v", groups)
	}
	if err := c.DeleteGroup("app0"); err == nil {
		t.Error("deleting a missing group should error")
	}
	if err := c.DeleteGroup(""); err == nil {
		t.Error("deleting the root group should error")
	}
	if err := c.CreateGroup(""); err == nil {
		t.Error("creating the root group should error")
	}
	if err := c.CreateGroup("info"); err == nil {
		t.Error("creating 'info' should error")
	}
	if err := c.CreateGroup("a/b"); err == nil {
		t.Error("slash in group name should error")
	}
}

func TestCLOSIDLimit(t *testing.T) {
	c := newSim(t)
	made := 0
	for i := 0; i < 20; i++ {
		if err := c.CreateGroup(groupName(i)); err != nil {
			break
		}
		made++
	}
	if made != c.Info().NumCLOSIDs-1 {
		t.Errorf("created %d groups, want %d (CLOSIDs minus root)", made, c.Info().NumCLOSIDs-1)
	}
}

func groupName(i int) string { return "g" + string(rune('a'+i)) }

func TestWriteSchemataValidatesAndMerges(t *testing.T) {
	c := newSim(t)
	if err := c.CreateGroup("app"); err != nil {
		t.Fatal(err)
	}
	// Partial write: only L3. MB must keep its old value.
	if err := c.WriteSchemata("app", Schemata{L3: map[int]uint64{0: 0x3}}); err != nil {
		t.Fatal(err)
	}
	s, err := c.ReadSchemata("app")
	if err != nil {
		t.Fatal(err)
	}
	if s.L3[0] != 0x3 || s.MB[0] != 100 {
		t.Errorf("after partial write: %+v", s)
	}
	// Now only MB.
	if err := c.WriteSchemata("app", Schemata{MB: map[int]int{0: 40}}); err != nil {
		t.Fatal(err)
	}
	s, _ = c.ReadSchemata("app")
	if s.L3[0] != 0x3 || s.MB[0] != 40 {
		t.Errorf("after MB write: %+v", s)
	}
	// Invalid writes rejected.
	if err := c.WriteSchemata("app", Schemata{L3: map[int]uint64{0: 0b101}}); err == nil {
		t.Error("non-contiguous CBM accepted")
	}
	if err := c.WriteSchemata("app", Schemata{MB: map[int]int{0: 5}}); err == nil {
		t.Error("MB below min accepted")
	}
}

func TestTasksAndCPUs(t *testing.T) {
	c := newSim(t)
	if err := c.CreateGroup("app"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTask("app", 1234); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTask("app", 1235); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTask("app", 0); err == nil {
		t.Error("pid 0 should error")
	}
	pids, err := c.Tasks("app")
	if err != nil {
		t.Fatal(err)
	}
	if len(pids) != 2 || pids[0] != 1234 || pids[1] != 1235 {
		t.Errorf("Tasks=%v", pids)
	}
	if err := c.SetCPUs("app", "0-3"); err != nil {
		t.Fatal(err)
	}
	cpus, err := c.CPUs("app")
	if err != nil {
		t.Fatal(err)
	}
	if cpus != "0-3" {
		t.Errorf("CPUs=%q", cpus)
	}
}

func TestApplyToMachine(t *testing.T) {
	cfg := machine.DefaultConfig()
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	model := machine.AppModel{
		Name: "app", Cores: 4, CPIBase: 1, AccPerInstr: 0.01,
		Hot: []machine.WSComponent{{Bytes: 4 << 20, Weight: 1}},
	}
	if err := m.AddApp(model); err != nil {
		t.Fatal(err)
	}
	c := newSim(t)
	if err := c.CreateGroup("app"); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteSchemata("app", Schemata{
		L3: map[int]uint64{0: 0x7},
		MB: map[int]int{0: 30},
	}); err != nil {
		t.Fatal(err)
	}
	if err := ApplyToMachine(c, m); err != nil {
		t.Fatal(err)
	}
	got, err := m.Allocation("app")
	if err != nil {
		t.Fatal(err)
	}
	if got.CBM != 0x7 || got.MBALevel != 30 {
		t.Errorf("machine allocation %+v", got)
	}
}

func TestApplyToMachineUnknownGroup(t *testing.T) {
	m, err := machine.New(machine.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := newSim(t)
	if err := c.CreateGroup("ghost"); err != nil {
		t.Fatal(err)
	}
	if err := ApplyToMachine(c, m); err == nil {
		t.Error("group without a matching app should error")
	}
}

func TestOpenMissingTree(t *testing.T) {
	if _, err := Open(t.TempDir()); err == nil {
		t.Error("opening an empty directory should error")
	}
}

func TestRoot(t *testing.T) {
	dir := t.TempDir()
	c, err := NewSimTree(dir, machine.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if c.Root() != dir {
		t.Errorf("Root()=%q want %q", c.Root(), dir)
	}
}
