// Package resctrl implements the Linux resctrl filesystem interface used
// to program Intel CAT and MBA (§2.2, §3.1 of the paper).
//
// The kernel exposes resource control at /sys/fs/resctrl: each control
// group is a directory whose "schemata" file holds one line per resource,
//
//	L3:0=7ff;1=7ff
//	MB:0=100;1=100
//
// mapping each cache/socket id to a capacity bitmask (hex, contiguous) or
// an MBA percentage. This package provides a strict parser/formatter for
// schemata, a filesystem client that works against any resctrl-shaped
// directory tree — the real mount or the simulated tree from sim.go — and
// validation against the advertised hardware limits (info/ directory).
package resctrl

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"strconv"
	"strings"
)

// Typed error sentinels. Callers that need to branch on a failure class —
// "is this schemata text garbage, or did the group disappear under me?" —
// test with errors.Is instead of matching message strings. File-level
// failures (missing schemata file, removed group directory) additionally
// wrap the underlying *fs.PathError, so errors.Is(err, fs.ErrNotExist)
// works for those.
var (
	// ErrMalformedSchemata tags schemata text the parser rejects.
	ErrMalformedSchemata = errors.New("malformed schemata")
	// ErrInvalidGroup tags control-group names the client refuses to
	// resolve (path separators, reserved names).
	ErrInvalidGroup = errors.New("invalid group name")
)

// Schemata is the parsed contents of one schemata file.
type Schemata struct {
	// L3 maps cache id → capacity bitmask (CAT).
	L3 map[int]uint64
	// MB maps cache id → MBA level in percent.
	MB map[int]int
	// Other preserves unrecognized resource lines (e.g. L2, L3CODE)
	// verbatim so a read-modify-write round-trip does not destroy them.
	Other []string
}

// ParseSchemata parses the text of a schemata file.
func ParseSchemata(text string) (Schemata, error) {
	s := Schemata{L3: make(map[int]uint64), MB: make(map[int]int)}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		resource, rest, found := strings.Cut(line, ":")
		if !found {
			return Schemata{}, fmt.Errorf("resctrl: line %d: missing ':' in %q: %w", ln+1, line, ErrMalformedSchemata)
		}
		resource = strings.TrimSpace(resource)
		switch resource {
		case "L3":
			if err := parsePairs(rest, func(id int, val string) error {
				mask, err := strconv.ParseUint(val, 16, 64)
				if err != nil {
					return fmt.Errorf("bad CBM %q: %v", val, err)
				}
				if _, dup := s.L3[id]; dup {
					return fmt.Errorf("duplicate cache id %d", id)
				}
				s.L3[id] = mask
				return nil
			}); err != nil {
				return Schemata{}, fmt.Errorf("resctrl: line %d: %v: %w", ln+1, err, ErrMalformedSchemata)
			}
		case "MB":
			if err := parsePairs(rest, func(id int, val string) error {
				level, err := strconv.Atoi(val)
				if err != nil {
					return fmt.Errorf("bad MB value %q: %v", val, err)
				}
				if _, dup := s.MB[id]; dup {
					return fmt.Errorf("duplicate cache id %d", id)
				}
				s.MB[id] = level
				return nil
			}); err != nil {
				return Schemata{}, fmt.Errorf("resctrl: line %d: %v: %w", ln+1, err, ErrMalformedSchemata)
			}
		default:
			s.Other = append(s.Other, line)
		}
	}
	return s, nil
}

// parsePairs splits "0=7ff;1=3ff" and calls fn per (id, value) pair.
func parsePairs(rest string, fn func(id int, val string) error) error {
	for _, pair := range strings.Split(rest, ";") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		idStr, val, found := strings.Cut(pair, "=")
		if !found {
			return fmt.Errorf("missing '=' in %q", pair)
		}
		id, err := strconv.Atoi(strings.TrimSpace(idStr))
		if err != nil {
			return fmt.Errorf("bad cache id %q: %v", idStr, err)
		}
		if err := fn(id, strings.TrimSpace(val)); err != nil {
			return err
		}
	}
	return nil
}

// Format renders the schemata in the kernel's format, resources in L3, MB,
// Other order and cache ids ascending.
func (s Schemata) Format() string {
	var b strings.Builder
	if len(s.L3) > 0 {
		b.WriteString("L3:")
		b.WriteString(formatPairs(sortedKeys(s.L3), func(id int) string {
			return strconv.FormatUint(s.L3[id], 16)
		}))
		b.WriteByte('\n')
	}
	if len(s.MB) > 0 {
		b.WriteString("MB:")
		b.WriteString(formatPairs(sortedKeys(s.MB), func(id int) string {
			return strconv.Itoa(s.MB[id])
		}))
		b.WriteByte('\n')
	}
	for _, o := range s.Other {
		b.WriteString(o)
		b.WriteByte('\n')
	}
	return b.String()
}

func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func formatPairs(ids []int, val func(int) string) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("%d=%s", id, val(id))
	}
	return strings.Join(parts, ";")
}

// Info holds the hardware limits advertised under resctrl's info/
// directory, used to validate schemata before writing.
type Info struct {
	CBMMask    uint64 // info/L3/cbm_mask: all implemented ways
	MinCBMBits int    // info/L3/min_cbm_bits
	NumCLOSIDs int    // info/L3/num_closids
	MBAMin     int    // info/MB/min_bandwidth
	MBAGran    int    // info/MB/bandwidth_gran
	CacheIDs   []int  // cache domains present (socket ids)
	// Monitoring (CMT/MBM) capabilities, absent when the tree has no
	// info/L3_MON directory.
	NumRMIDs    int      // info/L3_MON/num_rmids
	MonFeatures []string // info/L3_MON/mon_features
}

// SupportsMonitoring reports whether the tree advertises CMT/MBM.
func (in Info) SupportsMonitoring() bool { return in.NumRMIDs > 0 }

// Validate checks the info block itself.
func (in Info) Validate() error {
	if in.CBMMask == 0 {
		return fmt.Errorf("resctrl: zero cbm_mask")
	}
	if in.MinCBMBits < 1 || in.MinCBMBits > bits.OnesCount64(in.CBMMask) {
		return fmt.Errorf("resctrl: min_cbm_bits %d out of range", in.MinCBMBits)
	}
	if in.NumCLOSIDs < 1 {
		return fmt.Errorf("resctrl: num_closids %d", in.NumCLOSIDs)
	}
	if in.MBAMin < 1 || in.MBAMin > 100 {
		return fmt.Errorf("resctrl: min_bandwidth %d", in.MBAMin)
	}
	if in.MBAGran < 1 || in.MBAGran > 100 {
		return fmt.Errorf("resctrl: bandwidth_gran %d", in.MBAGran)
	}
	if len(in.CacheIDs) == 0 {
		return fmt.Errorf("resctrl: no cache domains")
	}
	return nil
}

// CheckSchemata validates a schemata against the hardware limits, applying
// the kernel's rules: CBMs must be non-zero, contiguous, within cbm_mask,
// and at least min_cbm_bits wide; MB values must lie in
// [min_bandwidth, 100] and be multiples of bandwidth_gran; every cache
// domain present in the schemata must exist.
func (in Info) CheckSchemata(s Schemata) error {
	valid := make(map[int]bool, len(in.CacheIDs))
	for _, id := range in.CacheIDs {
		valid[id] = true
	}
	for id, mask := range s.L3 {
		if !valid[id] {
			return fmt.Errorf("resctrl: unknown cache id %d in L3 schemata", id)
		}
		if mask == 0 {
			return fmt.Errorf("resctrl: cache %d: empty CBM", id)
		}
		if mask&^in.CBMMask != 0 {
			return fmt.Errorf("resctrl: cache %d: CBM %x exceeds cbm_mask %x", id, mask, in.CBMMask)
		}
		if !contiguous(mask) {
			return fmt.Errorf("resctrl: cache %d: CBM %x is not contiguous", id, mask)
		}
		if bits.OnesCount64(mask) < in.MinCBMBits {
			return fmt.Errorf("resctrl: cache %d: CBM %x below min_cbm_bits %d", id, mask, in.MinCBMBits)
		}
	}
	for id, level := range s.MB {
		if !valid[id] {
			return fmt.Errorf("resctrl: unknown cache id %d in MB schemata", id)
		}
		if level < in.MBAMin || level > 100 {
			return fmt.Errorf("resctrl: cache %d: MB %d outside [%d,100]", id, level, in.MBAMin)
		}
		if level%in.MBAGran != 0 {
			return fmt.Errorf("resctrl: cache %d: MB %d not a multiple of %d", id, level, in.MBAGran)
		}
	}
	return nil
}

func contiguous(mask uint64) bool {
	if mask == 0 {
		return false
	}
	shifted := mask >> uint(bits.TrailingZeros64(mask))
	return shifted&(shifted+1) == 0
}
