package resctrl

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/machine"
)

// NewSimTree materializes a resctrl-shaped directory tree under dir,
// advertising the limits of the given machine configuration: one cache
// domain (id 0), an 11-way cbm_mask on the paper's machine, min_cbm_bits
// of 1, and MBA from min 10 at granularity 10. The tree is plain files, so
// the Client — and any external tool — drives it exactly like the real
// /sys/fs/resctrl.
func NewSimTree(dir string, cfg machine.Config) (*Client, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cacheIDs := make([]int, cfg.SocketCount())
	rootL3 := make(map[int]uint64, len(cacheIDs))
	rootMB := make(map[int]int, len(cacheIDs))
	for s := range cacheIDs {
		cacheIDs[s] = s
		rootL3[s] = cfg.FullMask()
		rootMB[s] = 100
	}
	info := Info{
		CBMMask:    cfg.FullMask(),
		MinCBMBits: 1,
		NumCLOSIDs: 16, // the paper's CPU exposes 16 CLOSIDs
		MBAMin:     10,
		MBAGran:    10,
		CacheIDs:   cacheIDs,
	}
	for _, sub := range []string{
		filepath.Join(dir, "info", "L3"),
		filepath.Join(dir, "info", "MB"),
		filepath.Join(dir, "info", "L3_MON"),
	} {
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, fmt.Errorf("resctrl: %w", err)
		}
	}
	files := map[string]string{
		filepath.Join("info", "L3", "cbm_mask"):         strconv.FormatUint(info.CBMMask, 16),
		filepath.Join("info", "L3", "min_cbm_bits"):     strconv.Itoa(info.MinCBMBits),
		filepath.Join("info", "L3", "num_closids"):      strconv.Itoa(info.NumCLOSIDs),
		filepath.Join("info", "MB", "min_bandwidth"):    strconv.Itoa(info.MBAMin),
		filepath.Join("info", "MB", "bandwidth_gran"):   strconv.Itoa(info.MBAGran),
		filepath.Join("info", "MB", "num_closids"):      strconv.Itoa(info.NumCLOSIDs),
		filepath.Join("info", "L3_MON", "num_rmids"):    "224", // the paper's CPU generation
		filepath.Join("info", "L3_MON", "mon_features"): "llc_occupancy\nmbm_total_bytes\nmbm_local_bytes",
		"schemata": Schemata{L3: rootL3, MB: rootMB}.Format(),
		"tasks":    "",
		"cpus":     fmt.Sprintf("0-%d\n", cfg.Cores*cfg.SocketCount()-1),
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content+"\n"), 0o644); err != nil {
			return nil, fmt.Errorf("resctrl: %w", err)
		}
	}
	return Open(dir)
}

// ApplyToMachine pushes the current schemata of the given control groups
// into the machine simulator: group names must equal application names.
// This is the bridge that lets the file-level interface actuate the
// simulated hardware, mirroring how the kernel programs MSRs on schemata
// writes.
func ApplyToMachine(c *Client, m *machine.Machine) error {
	groups, err := c.Groups()
	if err != nil {
		return err
	}
	for _, g := range groups {
		s, err := c.ReadSchemata(g)
		if err != nil {
			return err
		}
		// The application's home socket selects which cache domain of
		// the schemata is authoritative for it.
		model, err := m.Model(g)
		if err != nil {
			return fmt.Errorf("resctrl: applying group %s: %w", g, err)
		}
		domain := model.Socket
		cbm, ok := s.L3[domain]
		if !ok {
			return fmt.Errorf("resctrl: group %s has no L3 domain %d", g, domain)
		}
		level, ok := s.MB[domain]
		if !ok {
			return fmt.Errorf("resctrl: group %s has no MB domain %d", g, domain)
		}
		if err := m.SetAllocation(g, machine.Alloc{CBM: cbm, MBALevel: level}); err != nil {
			return fmt.Errorf("resctrl: applying group %s: %w", g, err)
		}
	}
	return nil
}
