// Package svgplot renders the repository's experiment results as
// standalone SVG figures using only the standard library. The paper's
// artifacts are plots — tile heatmaps (Figures 1–6), grouped bars
// (Figures 12–14, 17), and time series (Figures 11, 15) — and the cmd
// tools can emit faithful SVG versions next to their text tables.
package svgplot

import (
	"fmt"
	"html"
	"io"
	"math"
	"strings"
)

const (
	canvasW = 860.0
	canvasH = 520.0
	marginL = 90.0
	marginR = 30.0
	marginT = 60.0
	marginB = 80.0
)

func plotW() float64 { return canvasW - marginL - marginR }
func plotH() float64 { return canvasH - marginT - marginB }

// esc escapes text for SVG attribute/content positions.
func esc(s string) string { return html.EscapeString(s) }

type svgWriter struct {
	b   strings.Builder
	err error
}

func (s *svgWriter) printf(format string, args ...interface{}) {
	if s.err != nil {
		return
	}
	_, s.err = fmt.Fprintf(&s.b, format, args...)
}

func (s *svgWriter) open(title string) {
	s.printf(`<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" viewBox="0 0 %g %g" font-family="sans-serif">`+"\n",
		canvasW, canvasH, canvasW, canvasH)
	s.printf(`<rect width="%g" height="%g" fill="white"/>`+"\n", canvasW, canvasH)
	if title != "" {
		s.printf(`<text x="%g" y="28" font-size="16" text-anchor="middle">%s</text>`+"\n",
			canvasW/2, esc(title))
	}
}

func (s *svgWriter) close(w io.Writer) error {
	s.printf("</svg>\n")
	if s.err != nil {
		return s.err
	}
	_, err := io.WriteString(w, s.b.String())
	return err
}

// lerp interpolates linearly.
func lerp(a, b, t float64) float64 { return a + (b-a)*t }

// heatColor maps t∈[0,1] onto a light-to-dark blue ramp.
func heatColor(t float64) string {
	if math.IsNaN(t) {
		t = 0
	}
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	// #f7fbff → #08306b
	r := int(lerp(247, 8, t))
	g := int(lerp(251, 48, t))
	b := int(lerp(255, 107, t))
	return fmt.Sprintf("#%02x%02x%02x", r, g, b)
}

// seriesPalette is a color-blind-friendly categorical palette.
var seriesPalette = []string{
	"#0072b2", "#d55e00", "#009e73", "#cc79a7", "#f0e442", "#56b4e9", "#e69f00",
}

// HeatmapSpec describes a tile plot: Values[row][col], rows rendered top
// to bottom.
type HeatmapSpec struct {
	Title  string
	XLabel string
	YLabel string
	XTicks []string
	YTicks []string
	Values [][]float64
}

// WriteHeatmap renders the spec as SVG.
func WriteHeatmap(w io.Writer, spec HeatmapSpec) error {
	rows, cols := len(spec.YTicks), len(spec.XTicks)
	if rows == 0 || cols == 0 {
		return fmt.Errorf("svgplot: empty heatmap axes")
	}
	if len(spec.Values) != rows {
		return fmt.Errorf("svgplot: %d value rows for %d y ticks", len(spec.Values), rows)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, row := range spec.Values {
		if len(row) != cols {
			return fmt.Errorf("svgplot: ragged heatmap row (%d cells for %d x ticks)", len(row), cols)
		}
		for _, v := range row {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	s := &svgWriter{}
	s.open(spec.Title)
	cw := plotW() / float64(cols)
	ch := plotH() / float64(rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := spec.Values[r][c]
			t := (v - lo) / (hi - lo)
			x := marginL + float64(c)*cw
			y := marginT + float64(r)*ch
			s.printf(`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="white"/>`+"\n",
				x, y, cw, ch, heatColor(t))
			txt := "#000"
			if t > 0.55 {
				txt = "#fff"
			}
			s.printf(`<text x="%.1f" y="%.1f" font-size="10" text-anchor="middle" fill="%s">%.2f</text>`+"\n",
				x+cw/2, y+ch/2+3, txt, v)
		}
	}
	for c, tick := range spec.XTicks {
		s.printf(`<text x="%.1f" y="%.1f" font-size="11" text-anchor="middle">%s</text>`+"\n",
			marginL+(float64(c)+0.5)*cw, marginT+plotH()+18, esc(tick))
	}
	for r, tick := range spec.YTicks {
		s.printf(`<text x="%.1f" y="%.1f" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginL-6, marginT+(float64(r)+0.5)*ch+4, esc(tick))
	}
	if spec.XLabel != "" {
		s.printf(`<text x="%g" y="%g" font-size="13" text-anchor="middle">%s</text>`+"\n",
			marginL+plotW()/2, canvasH-20, esc(spec.XLabel))
	}
	if spec.YLabel != "" {
		s.printf(`<text x="20" y="%g" font-size="13" text-anchor="middle" transform="rotate(-90 20 %g)">%s</text>`+"\n",
			marginT+plotH()/2, marginT+plotH()/2, esc(spec.YLabel))
	}
	return s.close(w)
}

// BarSeries is one named series of a grouped bar chart.
type BarSeries struct {
	Name   string
	Values []float64
}

// BarSpec describes a grouped bar chart: one group per X label, one bar
// per series within each group.
type BarSpec struct {
	Title  string
	YLabel string
	Groups []string
	Series []BarSeries
}

// WriteBars renders the spec as SVG.
func WriteBars(w io.Writer, spec BarSpec) error {
	if len(spec.Groups) == 0 || len(spec.Series) == 0 {
		return fmt.Errorf("svgplot: empty bar chart")
	}
	hi := 0.0
	for _, sr := range spec.Series {
		if len(sr.Values) != len(spec.Groups) {
			return fmt.Errorf("svgplot: series %q has %d values for %d groups",
				sr.Name, len(sr.Values), len(spec.Groups))
		}
		for _, v := range sr.Values {
			if v < 0 {
				return fmt.Errorf("svgplot: negative bar value %v in %q", v, sr.Name)
			}
			hi = math.Max(hi, v)
		}
	}
	if hi == 0 {
		hi = 1
	}
	hi *= 1.1 // headroom
	s := &svgWriter{}
	s.open(spec.Title)
	groups := float64(len(spec.Groups))
	perGroup := plotW() / groups
	barW := perGroup * 0.8 / float64(len(spec.Series))
	// Y grid lines.
	for i := 0; i <= 4; i++ {
		v := hi * float64(i) / 4
		y := marginT + plotH() - v/hi*plotH()
		s.printf(`<line x1="%g" y1="%.1f" x2="%g" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, y, marginL+plotW(), y)
		s.printf(`<text x="%g" y="%.1f" font-size="10" text-anchor="end">%.2f</text>`+"\n",
			marginL-6, y+3, v)
	}
	for gi, group := range spec.Groups {
		gx := marginL + float64(gi)*perGroup + perGroup*0.1
		for si, sr := range spec.Series {
			v := sr.Values[gi]
			h := v / hi * plotH()
			x := gx + float64(si)*barW
			y := marginT + plotH() - h
			s.printf(`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
				x, y, barW*0.92, h, seriesPalette[si%len(seriesPalette)])
		}
		s.printf(`<text x="%.1f" y="%.1f" font-size="11" text-anchor="middle">%s</text>`+"\n",
			gx+perGroup*0.4, marginT+plotH()+18, esc(group))
	}
	writeLegend(s, seriesNames(spec.Series))
	if spec.YLabel != "" {
		s.printf(`<text x="20" y="%g" font-size="13" text-anchor="middle" transform="rotate(-90 20 %g)">%s</text>`+"\n",
			marginT+plotH()/2, marginT+plotH()/2, esc(spec.YLabel))
	}
	return s.close(w)
}

func seriesNames(series []BarSeries) []string {
	names := make([]string, len(series))
	for i, s := range series {
		names[i] = s.Name
	}
	return names
}

func writeLegend(s *svgWriter, names []string) {
	x := marginL
	y := marginT - 18.0
	for i, name := range names {
		s.printf(`<rect x="%.1f" y="%.1f" width="10" height="10" fill="%s"/>`+"\n",
			x, y-9, seriesPalette[i%len(seriesPalette)])
		s.printf(`<text x="%.1f" y="%.1f" font-size="11">%s</text>`+"\n", x+14, y, esc(name))
		x += 16 + 8*float64(len(name)) + 14
	}
}

// LineSeries is one named series of a line chart.
type LineSeries struct {
	Name   string
	Values []float64
}

// LineSpec describes a multi-series line chart over a shared X axis.
type LineSpec struct {
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []LineSeries
}

// WriteLines renders the spec as SVG.
func WriteLines(w io.Writer, spec LineSpec) error {
	if len(spec.X) < 2 || len(spec.Series) == 0 {
		return fmt.Errorf("svgplot: a line chart needs ≥2 x points and ≥1 series")
	}
	xlo, xhi := spec.X[0], spec.X[0]
	for _, x := range spec.X {
		xlo = math.Min(xlo, x)
		xhi = math.Max(xhi, x)
	}
	ylo, yhi := math.Inf(1), math.Inf(-1)
	for _, sr := range spec.Series {
		if len(sr.Values) != len(spec.X) {
			return fmt.Errorf("svgplot: series %q has %d values for %d x points",
				sr.Name, len(sr.Values), len(spec.X))
		}
		for _, v := range sr.Values {
			ylo = math.Min(ylo, v)
			yhi = math.Max(yhi, v)
		}
	}
	if xhi == xlo {
		xhi = xlo + 1
	}
	if yhi == ylo {
		yhi = ylo + 1
	}
	ylo = math.Min(ylo, 0)
	yhi *= 1.05
	px := func(x float64) float64 { return marginL + (x-xlo)/(xhi-xlo)*plotW() }
	py := func(y float64) float64 { return marginT + plotH() - (y-ylo)/(yhi-ylo)*plotH() }

	s := &svgWriter{}
	s.open(spec.Title)
	for i := 0; i <= 4; i++ {
		v := ylo + (yhi-ylo)*float64(i)/4
		s.printf(`<line x1="%g" y1="%.1f" x2="%g" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, py(v), marginL+plotW(), py(v))
		s.printf(`<text x="%g" y="%.1f" font-size="10" text-anchor="end">%.3g</text>`+"\n",
			marginL-6, py(v)+3, v)
	}
	for i := 0; i <= 5; i++ {
		v := xlo + (xhi-xlo)*float64(i)/5
		s.printf(`<text x="%.1f" y="%.1f" font-size="10" text-anchor="middle">%.3g</text>`+"\n",
			px(v), marginT+plotH()+18, v)
	}
	for si, sr := range spec.Series {
		var pts strings.Builder
		for i, v := range sr.Values {
			if i > 0 {
				pts.WriteByte(' ')
			}
			fmt.Fprintf(&pts, "%.1f,%.1f", px(spec.X[i]), py(v))
		}
		s.printf(`<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			pts.String(), seriesPalette[si%len(seriesPalette)])
	}
	lineNames := make([]string, len(spec.Series))
	for i, sr := range spec.Series {
		lineNames[i] = sr.Name
	}
	writeLegend(s, lineNames)
	if spec.XLabel != "" {
		s.printf(`<text x="%g" y="%g" font-size="13" text-anchor="middle">%s</text>`+"\n",
			marginL+plotW()/2, canvasH-20, esc(spec.XLabel))
	}
	if spec.YLabel != "" {
		s.printf(`<text x="20" y="%g" font-size="13" text-anchor="middle" transform="rotate(-90 20 %g)">%s</text>`+"\n",
			marginT+plotH()/2, marginT+plotH()/2, esc(spec.YLabel))
	}
	return s.close(w)
}
