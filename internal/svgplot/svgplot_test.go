package svgplot

import (
	"bytes"
	"encoding/xml"
	"io"
	"strings"
	"testing"
)

// wellFormed checks that the output parses as XML and counts elements.
func wellFormed(t *testing.T, b []byte) map[string]int {
	t.Helper()
	dec := xml.NewDecoder(bytes.NewReader(b))
	counts := map[string]int{}
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("not well-formed XML: %v\n%s", err, b)
		}
		if se, ok := tok.(xml.StartElement); ok {
			counts[se.Name.Local]++
		}
	}
	return counts
}

func TestWriteHeatmap(t *testing.T) {
	var b bytes.Buffer
	spec := HeatmapSpec{
		Title:  "Fig 1 <WN>",
		XLabel: "MBA", YLabel: "ways",
		XTicks: []string{"10", "50", "100"},
		YTicks: []string{"1", "11"},
		Values: [][]float64{{0.2, 0.5, 0.6}, {0.9, 1.0, 1.0}},
	}
	if err := WriteHeatmap(&b, spec); err != nil {
		t.Fatal(err)
	}
	counts := wellFormed(t, b.Bytes())
	// Background + 6 cells.
	if counts["rect"] != 7 {
		t.Errorf("rect count %d, want 7", counts["rect"])
	}
	if !strings.Contains(b.String(), "&lt;WN&gt;") {
		t.Error("title not escaped")
	}
}

func TestWriteHeatmapValidation(t *testing.T) {
	if err := WriteHeatmap(&bytes.Buffer{}, HeatmapSpec{}); err == nil {
		t.Error("empty axes should error")
	}
	bad := HeatmapSpec{
		XTicks: []string{"a"}, YTicks: []string{"b"},
		Values: [][]float64{{1, 2}},
	}
	if err := WriteHeatmap(&bytes.Buffer{}, bad); err == nil {
		t.Error("ragged rows should error")
	}
	short := HeatmapSpec{
		XTicks: []string{"a"}, YTicks: []string{"b", "c"},
		Values: [][]float64{{1}},
	}
	if err := WriteHeatmap(&bytes.Buffer{}, short); err == nil {
		t.Error("missing rows should error")
	}
}

func TestWriteHeatmapConstantValues(t *testing.T) {
	// A flat surface must not divide by zero.
	var b bytes.Buffer
	spec := HeatmapSpec{
		XTicks: []string{"a", "b"}, YTicks: []string{"c"},
		Values: [][]float64{{1, 1}},
	}
	if err := WriteHeatmap(&b, spec); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, b.Bytes())
}

func TestWriteBars(t *testing.T) {
	var b bytes.Buffer
	spec := BarSpec{
		Title:  "Figure 12",
		YLabel: "unfairness",
		Groups: []string{"H-LLC", "H-BW"},
		Series: []BarSeries{
			{Name: "EQ", Values: []float64{1, 1}},
			{Name: "CoPart", Values: []float64{0.02, 0.66}},
		},
	}
	if err := WriteBars(&b, spec); err != nil {
		t.Fatal(err)
	}
	counts := wellFormed(t, b.Bytes())
	// Background + 4 bars + 2 legend swatches.
	if counts["rect"] != 7 {
		t.Errorf("rect count %d, want 7", counts["rect"])
	}
	if counts["line"] != 5 {
		t.Errorf("grid line count %d, want 5", counts["line"])
	}
}

func TestWriteBarsValidation(t *testing.T) {
	if err := WriteBars(&bytes.Buffer{}, BarSpec{}); err == nil {
		t.Error("empty chart should error")
	}
	bad := BarSpec{
		Groups: []string{"a", "b"},
		Series: []BarSeries{{Name: "s", Values: []float64{1}}},
	}
	if err := WriteBars(&bytes.Buffer{}, bad); err == nil {
		t.Error("length mismatch should error")
	}
	neg := BarSpec{
		Groups: []string{"a"},
		Series: []BarSeries{{Name: "s", Values: []float64{-1}}},
	}
	if err := WriteBars(&bytes.Buffer{}, neg); err == nil {
		t.Error("negative values should error")
	}
}

func TestWriteBarsAllZero(t *testing.T) {
	var b bytes.Buffer
	spec := BarSpec{
		Groups: []string{"a"},
		Series: []BarSeries{{Name: "s", Values: []float64{0}}},
	}
	if err := WriteBars(&b, spec); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, b.Bytes())
}

func TestWriteLines(t *testing.T) {
	var b bytes.Buffer
	spec := LineSpec{
		Title:  "Figure 15",
		XLabel: "t (s)", YLabel: "unfairness",
		X: []float64{0, 100, 200, 300},
		Series: []LineSeries{
			{Name: "CoPart", Values: []float64{0.1, 0.02, 0.11, 0.02}},
			{Name: "EQ", Values: []float64{0.15, 0.15, 0.15, 0.15}},
		},
	}
	if err := WriteLines(&b, spec); err != nil {
		t.Fatal(err)
	}
	counts := wellFormed(t, b.Bytes())
	if counts["polyline"] != 2 {
		t.Errorf("polyline count %d, want 2", counts["polyline"])
	}
}

func TestWriteLinesValidation(t *testing.T) {
	if err := WriteLines(&bytes.Buffer{}, LineSpec{X: []float64{1}}); err == nil {
		t.Error("single x point should error")
	}
	bad := LineSpec{
		X:      []float64{1, 2},
		Series: []LineSeries{{Name: "s", Values: []float64{1}}},
	}
	if err := WriteLines(&bytes.Buffer{}, bad); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestHeatColorRange(t *testing.T) {
	for _, tt := range []float64{-1, 0, 0.5, 1, 2} {
		c := heatColor(tt)
		if len(c) != 7 || c[0] != '#' {
			t.Errorf("heatColor(%v)=%q", tt, c)
		}
	}
}
