package texttab_test

import (
	"os"

	"repro/internal/texttab"
)

func ExampleTable() {
	t := texttab.New("Policies", "name", "unfairness")
	t.AddRow("EQ", "1.000")
	t.AddRow("CoPart", "0.220")
	_ = t.Render(os.Stdout)
	// Output:
	// Policies
	// name    unfairness
	// ------  ----------
	// EQ      1.000
	// CoPart  0.220
}
