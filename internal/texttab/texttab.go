// Package texttab renders plain-text tables and heatmaps.
//
// All experiment binaries in this repository print their results as text
// tables whose rows mirror the series of the corresponding paper table or
// figure; heatmaps (Figures 1–6) are printed as value grids with row/column
// headers so the paper's tile plots can be compared cell by cell.
package texttab

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows of cells and renders them with aligned columns.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row. Cells beyond the header count are still rendered;
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row, applying fmt.Sprintf to each (format, value) pair
// supplied as alternating arguments is impractical in Go; instead this
// helper formats every value with %v.
func (t *Table) AddRowv(values ...interface{}) {
	cells := make([]string, len(values))
	for i, v := range values {
		cells[i] = fmt.Sprintf("%v", v)
	}
	t.AddRow(cells...)
}

// NumRows reports how many data rows have been added.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	cols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	for i, h := range t.headers {
		if len(h) > widths[i] {
			widths[i] = len(h)
		}
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		var line strings.Builder
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				line.WriteString("  ")
			}
			line.WriteString(pad(c, widths[i]))
		}
		b.WriteString(strings.TrimRight(line.String(), " "))
		b.WriteByte('\n')
	}
	if len(t.headers) > 0 {
		writeRow(t.headers)
		sep := make([]string, cols)
		for i := range sep {
			sep[i] = strings.Repeat("-", widths[i])
		}
		writeRow(sep)
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string, ignoring write errors (strings
// never fail to build).
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Heatmap holds a dense numeric grid with labeled axes, rendered with a
// fixed numeric format. Rows index the Y axis (printed top to bottom in the
// order given), columns the X axis.
type Heatmap struct {
	Title  string
	XLabel string
	YLabel string
	XTicks []string
	YTicks []string
	Format string // e.g. "%.2f"; defaults to "%.3f"
	cells  [][]float64
}

// NewHeatmap allocates a heatmap with len(yTicks) rows and len(xTicks)
// columns, all zero.
func NewHeatmap(title string, xTicks, yTicks []string) *Heatmap {
	cells := make([][]float64, len(yTicks))
	for i := range cells {
		cells[i] = make([]float64, len(xTicks))
	}
	return &Heatmap{Title: title, XTicks: xTicks, YTicks: yTicks, cells: cells}
}

// Set stores a value at (row, col). Out-of-range indices panic, as they
// indicate a harness bug rather than a runtime condition.
func (h *Heatmap) Set(row, col int, v float64) {
	h.cells[row][col] = v
}

// At returns the value at (row, col).
func (h *Heatmap) At(row, col int) float64 { return h.cells[row][col] }

// Render writes the grid to w.
func (h *Heatmap) Render(w io.Writer) error {
	format := h.Format
	if format == "" {
		format = "%.3f"
	}
	var b strings.Builder
	if h.Title != "" {
		b.WriteString(h.Title)
		b.WriteByte('\n')
	}
	if h.XLabel != "" || h.YLabel != "" {
		fmt.Fprintf(&b, "rows: %s, cols: %s\n", h.YLabel, h.XLabel)
	}
	// Compute column widths from the rendered cells.
	rendered := make([][]string, len(h.cells))
	for i, row := range h.cells {
		rendered[i] = make([]string, len(row))
		for j, v := range row {
			rendered[i][j] = fmt.Sprintf(format, v)
		}
	}
	yw := 0
	for _, t := range h.YTicks {
		if len(t) > yw {
			yw = len(t)
		}
	}
	colw := make([]int, len(h.XTicks))
	for j, t := range h.XTicks {
		colw[j] = len(t)
	}
	for _, row := range rendered {
		for j, c := range row {
			if len(c) > colw[j] {
				colw[j] = len(c)
			}
		}
	}
	var hdr strings.Builder
	hdr.WriteString(pad("", yw))
	for j, t := range h.XTicks {
		hdr.WriteString("  ")
		hdr.WriteString(pad(t, colw[j]))
	}
	b.WriteString(strings.TrimRight(hdr.String(), " "))
	b.WriteByte('\n')
	for i, row := range rendered {
		var line strings.Builder
		line.WriteString(pad(h.YTicks[i], yw))
		for j, c := range row {
			line.WriteString("  ")
			line.WriteString(pad(c, colw[j]))
		}
		b.WriteString(strings.TrimRight(line.String(), " "))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the heatmap to a string.
func (h *Heatmap) String() string {
	var b strings.Builder
	_ = h.Render(&b)
	return b.String()
}
