package texttab

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := New("My Table", "name", "value")
	tab.AddRow("alpha", "1")
	tab.AddRow("b", "12345")
	out := tab.String()
	if !strings.Contains(out, "My Table") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "name") || !strings.Contains(out, "value") {
		t.Error("missing headers")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + separator + 2 rows
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
	// Alignment: columns should start at the same offset on all data rows.
	hdr := lines[1]
	row := lines[3]
	if strings.Index(hdr, "value") != strings.Index(row, "1") {
		t.Errorf("columns misaligned:\n%s", out)
	}
	if tab.NumRows() != 2 {
		t.Errorf("NumRows=%d want 2", tab.NumRows())
	}
}

func TestTableRaggedRows(t *testing.T) {
	tab := New("", "a")
	tab.AddRow("x", "extra", "more")
	tab.AddRow()
	out := tab.String()
	if !strings.Contains(out, "extra") || !strings.Contains(out, "more") {
		t.Errorf("extra cells must still render:\n%s", out)
	}
}

func TestTableAddRowv(t *testing.T) {
	tab := New("", "n", "f")
	tab.AddRowv(42, 3.5)
	out := tab.String()
	if !strings.Contains(out, "42") || !strings.Contains(out, "3.5") {
		t.Errorf("AddRowv formatting failed:\n%s", out)
	}
}

func TestHeatmap(t *testing.T) {
	h := NewHeatmap("grid", []string{"10", "20"}, []string{"w1", "w11"})
	h.XLabel = "MBA"
	h.YLabel = "ways"
	h.Set(0, 0, 0.5)
	h.Set(1, 1, 1.0)
	if h.At(0, 0) != 0.5 || h.At(1, 1) != 1.0 {
		t.Error("Set/At mismatch")
	}
	out := h.String()
	if !strings.Contains(out, "grid") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "rows: ways, cols: MBA") {
		t.Errorf("missing axis labels:\n%s", out)
	}
	if !strings.Contains(out, "0.500") || !strings.Contains(out, "1.000") {
		t.Errorf("missing cells:\n%s", out)
	}
}

func TestHeatmapCustomFormat(t *testing.T) {
	h := NewHeatmap("", []string{"a"}, []string{"b"})
	h.Format = "%.1f"
	h.Set(0, 0, 0.25)
	if !strings.Contains(h.String(), "0.2") {
		t.Errorf("custom format not applied:\n%s", h.String())
	}
}

func TestHeatmapOutOfRangePanics(t *testing.T) {
	h := NewHeatmap("", []string{"a"}, []string{"b"})
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-range Set")
		}
	}()
	h.Set(5, 5, 1)
}
