package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// This file adds temporal processes to the package: instead of *where* a
// workload touches memory, these model *when* nodes arrive and *how long*
// they live — the churn side of fleet-over-trace (internal/fleet's
// RunChurn). Like the address generators, both processes are
// deterministic given their seed and restartable with Reset.

// ArrivalProcess draws node arrival times from a Poisson process: the
// gaps between consecutive arrivals are independent exponentials with
// mean 1/Rate, the standard model for independent tenants submitting
// work (each Next call advances the process clock and returns the next
// absolute arrival time, starting from 0). Not safe for concurrent use.
type ArrivalProcess struct {
	rate float64
	seed int64

	src rand.Source
	rng *rand.Rand
	now float64
}

// NewArrivalProcess returns a Poisson arrival process with the given
// mean arrival rate (arrivals per unit time, > 0 and finite).
func NewArrivalProcess(rate float64, seed int64) (*ArrivalProcess, error) {
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return nil, fmt.Errorf("trace: arrival rate %v not positive and finite", rate)
	}
	p := &ArrivalProcess{rate: rate, seed: seed}
	p.Reset()
	return p, nil
}

// Next returns the next absolute arrival time. Times are strictly
// increasing and start after 0.
func (p *ArrivalProcess) Next() float64 {
	p.now += p.rng.ExpFloat64() / p.rate
	return p.now
}

// Reset restarts the process from time 0 with the same seed, so replays
// reproduce the identical arrival sequence. Allocation-free after
// construction: re-seeding the retained source reproduces exactly the
// stream a fresh one would emit.
//
//copart:noalloc
func (p *ArrivalProcess) Reset() {
	if p.src == nil {
		p.src = rand.NewSource(p.seed) //copart:allocok one-time source construction, re-seeded forever after
		p.rng = rand.New(p.src)        //copart:allocok one-time generator construction, reused for the process lifetime
	} else {
		p.src.Seed(p.seed)
	}
	p.now = 0
}

// LifetimeProcess draws node lifetimes — whole control periods — from an
// exponential distribution with the given mean, clamped to [Min, Max].
// Exponential lifetimes are the memoryless baseline for service
// residence times; the clamp keeps every node inside the simulable
// range (at least one period, at most a bench-bounded cap). Not safe
// for concurrent use.
type LifetimeProcess struct {
	mean     float64
	min, max int
	seed     int64

	src rand.Source
	rng *rand.Rand
}

// NewLifetimeProcess returns an exponential lifetime process with the
// given mean (in periods, > 0 and finite), clamped to [min, max]
// periods; min must be ≥ 1 and ≤ max.
func NewLifetimeProcess(mean float64, min, max int, seed int64) (*LifetimeProcess, error) {
	if mean <= 0 || math.IsNaN(mean) || math.IsInf(mean, 0) {
		return nil, fmt.Errorf("trace: lifetime mean %v not positive and finite", mean)
	}
	if min < 1 || min > max {
		return nil, fmt.Errorf("trace: lifetime clamp [%d, %d] invalid (need 1 ≤ min ≤ max)", min, max)
	}
	p := &LifetimeProcess{mean: mean, min: min, max: max, seed: seed}
	p.Reset()
	return p, nil
}

// Next returns the next lifetime in whole periods, in [Min, Max].
func (p *LifetimeProcess) Next() int {
	life := int(p.rng.ExpFloat64() * p.mean)
	if life < p.min {
		life = p.min
	}
	if life > p.max {
		life = p.max
	}
	return life
}

// Reset restarts the process with the same seed. Allocation-free after
// construction (see ArrivalProcess.Reset).
//
//copart:noalloc
func (p *LifetimeProcess) Reset() {
	if p.src == nil {
		p.src = rand.NewSource(p.seed) //copart:allocok one-time source construction, re-seeded forever after
		p.rng = rand.New(p.src)        //copart:allocok one-time generator construction, reused for the process lifetime
	} else {
		p.src.Seed(p.seed)
	}
}
