package trace

import (
	"math"
	"testing"
)

// TestArrivalDeterminism pins that the arrival process is a pure
// function of its seed: same seed → identical sequence (also across
// Reset), different seeds → different sequences.
func TestArrivalDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 42, 1234} {
		a, err := NewArrivalProcess(2.0, seed)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewArrivalProcess(2.0, seed)
		if err != nil {
			t.Fatal(err)
		}
		var first []float64
		for i := 0; i < 100; i++ {
			x, y := a.Next(), b.Next()
			if x != y { //copart:floateq determinism contract: bit-identical draws
				t.Fatalf("seed %d draw %d: %v vs %v", seed, i, x, y)
			}
			first = append(first, x)
		}
		a.Reset()
		for i, want := range first {
			if got := a.Next(); got != want { //copart:floateq replay must be bit-identical
				t.Fatalf("seed %d: Reset replay draw %d: %v vs %v", seed, i, got, want)
			}
		}
	}
	a, _ := NewArrivalProcess(2.0, 1)
	b, _ := NewArrivalProcess(2.0, 2)
	same := 0
	for i := 0; i < 50; i++ {
		if a.Next() == b.Next() { //copart:floateq counting exact collisions between independent streams
			same++
		}
	}
	if same == 50 {
		t.Fatal("different seeds produced identical arrival sequences")
	}
}

// TestArrivalStatistics sanity-checks the process against its model:
// strictly increasing times with mean gap ≈ 1/rate.
func TestArrivalStatistics(t *testing.T) {
	const rate, n = 4.0, 20000
	p, err := NewArrivalProcess(rate, 7)
	if err != nil {
		t.Fatal(err)
	}
	prev, sum := 0.0, 0.0
	for i := 0; i < n; i++ {
		next := p.Next()
		if next <= prev {
			t.Fatalf("arrival %d: %v not after %v", i, next, prev)
		}
		sum += next - prev
		prev = next
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Errorf("mean interarrival %v, want ≈ %v", mean, 1/rate)
	}
}

// TestLifetimeDeterminism mirrors TestArrivalDeterminism for lifetimes
// and checks the clamp is honoured.
func TestLifetimeDeterminism(t *testing.T) {
	const min, max = 2, 40
	for _, seed := range []int64{1, 42, 1234} {
		a, err := NewLifetimeProcess(8, min, max, seed)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewLifetimeProcess(8, min, max, seed)
		if err != nil {
			t.Fatal(err)
		}
		var first []int
		for i := 0; i < 200; i++ {
			x, y := a.Next(), b.Next()
			if x != y {
				t.Fatalf("seed %d draw %d: %d vs %d", seed, i, x, y)
			}
			if x < min || x > max {
				t.Fatalf("seed %d draw %d: lifetime %d outside [%d, %d]", seed, i, x, min, max)
			}
			first = append(first, x)
		}
		a.Reset()
		for i, want := range first {
			if got := a.Next(); got != want {
				t.Fatalf("seed %d: Reset replay draw %d: %d vs %d", seed, i, got, want)
			}
		}
	}
}

// TestProcessGoldenReplay pins the exact head of both processes for a
// fixed seed — the trace-replay golden test. Any change to the draw
// order or distribution shows up here before it silently reshuffles
// every churn benchmark.
func TestProcessGoldenReplay(t *testing.T) {
	a, err := NewArrivalProcess(1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantArrivals := []float64{
		0.5872982159059681,
		1.1245803095597728,
		2.355633655945793,
		3.033260551833011,
		3.0777789123433,
	}
	for i, want := range wantArrivals {
		if got := a.Next(); got != want { //copart:floateq golden pin: draws must replay bit-identically
			t.Fatalf("arrival %d = %v, want %v", i, got, want)
		}
	}
	l, err := NewLifetimeProcess(10, 1, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantLives := []int{5, 5, 12, 6, 1, 2, 1, 1}
	for i, want := range wantLives {
		if got := l.Next(); got != want {
			t.Fatalf("lifetime %d = %d, want %d", i, got, want)
		}
	}
}

// TestProcessValidation covers the constructor error paths.
func TestProcessValidation(t *testing.T) {
	for _, rate := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewArrivalProcess(rate, 1); err == nil {
			t.Errorf("NewArrivalProcess(%v) accepted", rate)
		}
	}
	for _, tc := range []struct {
		mean     float64
		min, max int
	}{
		{0, 1, 10}, {-2, 1, 10}, {math.NaN(), 1, 10}, {math.Inf(1), 1, 10},
		{5, 0, 10}, {5, 4, 3},
	} {
		if _, err := NewLifetimeProcess(tc.mean, tc.min, tc.max, 1); err == nil {
			t.Errorf("NewLifetimeProcess(%v, %d, %d) accepted", tc.mean, tc.min, tc.max)
		}
	}
}
