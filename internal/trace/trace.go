// Package trace generates synthetic memory-address traces.
//
// The paper characterizes its benchmarks by locality and working-set size
// (§3.3): LLC-sensitive applications have high locality and working sets
// smaller than the LLC; bandwidth-sensitive applications stream with low
// locality or working sets exceeding the LLC; dual-sensitive applications
// mix both behaviours. This package provides generators for each behaviour
// so the trace-driven cache simulator (internal/cachesim) can derive
// miss-ratio curves that ground the analytic application models.
//
// Generators are deterministic given their seed, so every experiment in the
// repository is reproducible.
package trace

import (
	"fmt"
	"math/rand"
)

// Generator produces an infinite stream of byte addresses. Implementations
// need not be safe for concurrent use; drive each from a single goroutine.
type Generator interface {
	// Next returns the next address in the trace.
	Next() uint64
	// Reset restarts the trace from its beginning (same seed).
	Reset()
}

// Sequential streams through a region of memory front to back, wrapping
// around, touching one address per cache line. It models STREAM-like
// behaviour: zero temporal locality beyond the line, unbounded effective
// working set when Region exceeds the cache.
type Sequential struct {
	Base   uint64 // starting byte address
	Region uint64 // region size in bytes; must be > 0
	Stride uint64 // bytes between accesses; typically the line size

	off uint64
}

// NewSequential returns a sequential generator over [base, base+region).
func NewSequential(base, region, stride uint64) (*Sequential, error) {
	if region == 0 {
		return nil, fmt.Errorf("trace: zero region")
	}
	if stride == 0 {
		return nil, fmt.Errorf("trace: zero stride")
	}
	return &Sequential{Base: base, Region: region, Stride: stride}, nil
}

// Next implements Generator.
func (s *Sequential) Next() uint64 {
	a := s.Base + s.off
	s.off += s.Stride
	if s.off >= s.Region {
		s.off = 0
	}
	return a
}

// Reset implements Generator.
func (s *Sequential) Reset() { s.off = 0 }

// Loop repeatedly walks a fixed working set in order. With a working set
// that fits the allocated cache capacity almost every access hits after the
// first pass; once the capacity falls below the working-set size an LRU
// cache thrashes and the miss ratio jumps towards 1 — the cliff shape that
// makes an application LLC-sensitive.
type Loop struct {
	Base    uint64
	WorkSet uint64 // working-set size in bytes
	Stride  uint64

	off uint64
}

// NewLoop returns a looping generator over a working set.
func NewLoop(base, workSet, stride uint64) (*Loop, error) {
	if workSet == 0 {
		return nil, fmt.Errorf("trace: zero working set")
	}
	if stride == 0 {
		return nil, fmt.Errorf("trace: zero stride")
	}
	return &Loop{Base: base, WorkSet: workSet, Stride: stride}, nil
}

// Next implements Generator.
func (l *Loop) Next() uint64 {
	a := l.Base + l.off
	l.off += l.Stride
	if l.off >= l.WorkSet {
		l.off = 0
	}
	return a
}

// Reset implements Generator.
func (l *Loop) Reset() { l.off = 0 }

// Uniform draws addresses uniformly at random from a working set, modeling
// pointer-chasing over an in-memory structure. Its miss ratio under LRU
// degrades smoothly (not cliff-like) as capacity shrinks below the set.
type Uniform struct {
	Base    uint64
	WorkSet uint64
	Stride  uint64

	seed int64
	rng  *rand.Rand
}

// NewUniform returns a uniform random generator over a working set.
func NewUniform(base, workSet, stride uint64, seed int64) (*Uniform, error) {
	if workSet == 0 {
		return nil, fmt.Errorf("trace: zero working set")
	}
	if stride == 0 {
		return nil, fmt.Errorf("trace: zero stride")
	}
	u := &Uniform{Base: base, WorkSet: workSet, Stride: stride, seed: seed}
	u.Reset()
	return u, nil
}

// Next implements Generator.
func (u *Uniform) Next() uint64 {
	lines := u.WorkSet / u.Stride
	if lines == 0 {
		lines = 1
	}
	return u.Base + uint64(u.rng.Int63n(int64(lines)))*u.Stride
}

// Reset implements Generator.
func (u *Uniform) Reset() { u.rng = rand.New(rand.NewSource(u.seed)) }

// Zipf draws addresses from a working set with a Zipfian popularity skew,
// modeling hot/cold structures: a small hot subset absorbs most accesses,
// producing high locality with a long cold tail.
type Zipf struct {
	Base    uint64
	WorkSet uint64
	Stride  uint64
	S       float64 // Zipf skew parameter, > 1

	seed int64
	rng  *rand.Rand
	zipf *rand.Zipf
}

// NewZipf returns a Zipfian generator over a working set. s must be > 1
// (required by math/rand's Zipf).
func NewZipf(base, workSet, stride uint64, s float64, seed int64) (*Zipf, error) {
	if workSet == 0 {
		return nil, fmt.Errorf("trace: zero working set")
	}
	if stride == 0 {
		return nil, fmt.Errorf("trace: zero stride")
	}
	if s <= 1 {
		return nil, fmt.Errorf("trace: zipf skew %v must be > 1", s)
	}
	z := &Zipf{Base: base, WorkSet: workSet, Stride: stride, S: s, seed: seed}
	z.Reset()
	return z, nil
}

// Next implements Generator.
func (z *Zipf) Next() uint64 {
	return z.Base + z.zipf.Uint64()*z.Stride
}

// Reset implements Generator.
func (z *Zipf) Reset() {
	z.rng = rand.New(rand.NewSource(z.seed))
	lines := z.WorkSet / z.Stride
	if lines == 0 {
		lines = 1
	}
	z.zipf = rand.NewZipf(z.rng, z.S, 1, lines-1)
}

// Component pairs a generator with a relative weight in a Mixture.
type Component struct {
	Gen    Generator
	Weight float64 // must be > 0
}

// Mixture interleaves several generators, choosing each next access from a
// component with probability proportional to its weight. It models
// applications whose access stream blends a hot structure with streaming
// traffic (the paper's LLC- and bandwidth-sensitive class).
type Mixture struct {
	comps []Component
	cum   []float64 // cumulative normalized weights
	seed  int64
	rng   *rand.Rand
}

// NewMixture builds a mixture from components. At least one component is
// required and all weights must be positive.
func NewMixture(seed int64, comps ...Component) (*Mixture, error) {
	if len(comps) == 0 {
		return nil, fmt.Errorf("trace: empty mixture")
	}
	total := 0.0
	for i, c := range comps {
		if c.Weight <= 0 {
			return nil, fmt.Errorf("trace: component %d has non-positive weight %v", i, c.Weight)
		}
		if c.Gen == nil {
			return nil, fmt.Errorf("trace: component %d has nil generator", i)
		}
		total += c.Weight
	}
	m := &Mixture{comps: comps, seed: seed}
	m.cum = make([]float64, len(comps))
	run := 0.0
	for i, c := range comps {
		run += c.Weight / total
		m.cum[i] = run
	}
	m.cum[len(m.cum)-1] = 1.0 // guard against FP drift
	m.Reset()
	return m, nil
}

// Next implements Generator.
func (m *Mixture) Next() uint64 {
	r := m.rng.Float64()
	for i, c := range m.cum {
		if r < c {
			return m.comps[i].Gen.Next()
		}
	}
	return m.comps[len(m.comps)-1].Gen.Next()
}

// Reset implements Generator.
func (m *Mixture) Reset() {
	m.rng = rand.New(rand.NewSource(m.seed))
	for _, c := range m.comps {
		c.Gen.Reset()
	}
}

// Take drains n addresses from g into a new slice — a convenience for tests
// and the MRC profiler.
func Take(g Generator, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
