package trace

import (
	"testing"
	"testing/quick"
)

func TestSequentialWraps(t *testing.T) {
	g, err := NewSequential(0, 256, 64)
	if err != nil {
		t.Fatal(err)
	}
	got := Take(g, 6)
	want := []uint64{0, 64, 128, 192, 0, 64}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("addr[%d]=%d want %d", i, got[i], want[i])
		}
	}
}

func TestSequentialValidation(t *testing.T) {
	if _, err := NewSequential(0, 0, 64); err == nil {
		t.Error("zero region should error")
	}
	if _, err := NewSequential(0, 64, 0); err == nil {
		t.Error("zero stride should error")
	}
}

func TestSequentialReset(t *testing.T) {
	g, _ := NewSequential(100, 1024, 64)
	first := Take(g, 5)
	g.Reset()
	second := Take(g, 5)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("Reset not deterministic at %d: %d vs %d", i, first[i], second[i])
		}
	}
}

func TestLoopStaysInWorkingSet(t *testing.T) {
	g, err := NewLoop(4096, 512, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		a := g.Next()
		if a < 4096 || a >= 4096+512 {
			t.Fatalf("address %d out of working set", a)
		}
	}
}

func TestLoopValidation(t *testing.T) {
	if _, err := NewLoop(0, 0, 64); err == nil {
		t.Error("zero working set should error")
	}
	if _, err := NewLoop(0, 64, 0); err == nil {
		t.Error("zero stride should error")
	}
}

func TestUniformDeterministicAndBounded(t *testing.T) {
	g1, err := NewUniform(0, 1<<20, 64, 42)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewUniform(0, 1<<20, 64, 42)
	for i := 0; i < 1000; i++ {
		a, b := g1.Next(), g2.Next()
		if a != b {
			t.Fatalf("same seed diverged at %d", i)
		}
		if a >= 1<<20 {
			t.Fatalf("address %d out of working set", a)
		}
		if a%64 != 0 {
			t.Fatalf("address %d not stride-aligned", a)
		}
	}
}

func TestUniformValidation(t *testing.T) {
	if _, err := NewUniform(0, 0, 64, 1); err == nil {
		t.Error("zero working set should error")
	}
	if _, err := NewUniform(0, 64, 0, 1); err == nil {
		t.Error("zero stride should error")
	}
}

func TestUniformTinyWorkingSet(t *testing.T) {
	// Working set smaller than one stride still yields the base address.
	g, err := NewUniform(128, 32, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if a := g.Next(); a != 128 {
			t.Fatalf("expected base address, got %d", a)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	g, err := NewZipf(0, 1<<20, 64, 1.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[uint64]int{}
	n := 20000
	for i := 0; i < n; i++ {
		counts[g.Next()]++
	}
	// The most popular line (rank 0 → address 0) should dominate.
	if counts[0] < n/10 {
		t.Errorf("zipf rank-0 share %d/%d too small; skew not applied", counts[0], n)
	}
}

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 1024, 64, 0.5, 1); err == nil {
		t.Error("skew <= 1 should error")
	}
	if _, err := NewZipf(0, 0, 64, 1.5, 1); err == nil {
		t.Error("zero working set should error")
	}
	if _, err := NewZipf(0, 1024, 0, 1.5, 1); err == nil {
		t.Error("zero stride should error")
	}
}

func TestZipfReset(t *testing.T) {
	g, _ := NewZipf(0, 1<<16, 64, 1.2, 3)
	a := Take(g, 50)
	g.Reset()
	b := Take(g, 50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Reset not deterministic at %d", i)
		}
	}
}

func TestMixtureValidation(t *testing.T) {
	if _, err := NewMixture(1); err == nil {
		t.Error("empty mixture should error")
	}
	seq, _ := NewSequential(0, 1024, 64)
	if _, err := NewMixture(1, Component{Gen: seq, Weight: 0}); err == nil {
		t.Error("zero weight should error")
	}
	if _, err := NewMixture(1, Component{Gen: nil, Weight: 1}); err == nil {
		t.Error("nil generator should error")
	}
}

func TestMixtureProportions(t *testing.T) {
	hot, _ := NewLoop(0, 1024, 64)               // addresses < 1024
	stream, _ := NewSequential(1<<30, 1<<20, 64) // addresses >= 1<<30
	m, err := NewMixture(9,
		Component{Gen: hot, Weight: 3},
		Component{Gen: stream, Weight: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	n, hotCount := 40000, 0
	for i := 0; i < n; i++ {
		if m.Next() < 1<<20 {
			hotCount++
		}
	}
	frac := float64(hotCount) / float64(n)
	if frac < 0.70 || frac > 0.80 {
		t.Errorf("hot fraction %.3f, want ~0.75", frac)
	}
}

func TestMixtureReset(t *testing.T) {
	hot, _ := NewUniform(0, 1<<16, 64, 5)
	stream, _ := NewSequential(1<<30, 1<<20, 64)
	m, _ := NewMixture(11,
		Component{Gen: hot, Weight: 1},
		Component{Gen: stream, Weight: 1},
	)
	a := Take(m, 100)
	m.Reset()
	b := Take(m, 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("mixture Reset not deterministic at %d", i)
		}
	}
}

// Property: every generator's addresses stay within [base, base+region).
func TestGeneratorBoundsProperty(t *testing.T) {
	f := func(baseRaw uint32, sizeRaw uint16, seed int64) bool {
		base := uint64(baseRaw) * 64
		size := (uint64(sizeRaw)%1024 + 1) * 64
		gens := []Generator{}
		if g, err := NewSequential(base, size, 64); err == nil {
			gens = append(gens, g)
		}
		if g, err := NewLoop(base, size, 64); err == nil {
			gens = append(gens, g)
		}
		if g, err := NewUniform(base, size, 64, seed); err == nil {
			gens = append(gens, g)
		}
		if g, err := NewZipf(base, size, 64, 1.3, seed); err == nil {
			gens = append(gens, g)
		}
		for _, g := range gens {
			for i := 0; i < 200; i++ {
				a := g.Next()
				if a < base || a >= base+size {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
