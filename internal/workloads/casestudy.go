package workloads

import (
	"fmt"
	"math"
	"time"

	"repro/internal/machine"
)

// This file models the §6.3 case study workloads.
//
// Substitution note (see DESIGN.md): the paper collocates memcached
// (CloudSuite, Twitter dataset) with Spark Word Count and Kmeans
// (BigDataBench). We model memcached as a latency-critical service whose
// tail latency follows an M/M/1-style queueing curve over its achieved
// service capacity, and the two Spark jobs as batch application models
// with the access patterns their computations imply (Word Count streams a
// 64 GB corpus; Kmeans iterates over a 4 GB in-memory dataset). Figure 15
// needs only that (a) the LC workload's resource needs scale with load and
// (b) the batch jobs exhibit distinct LLC/bandwidth characteristics for
// CoPart to balance — both preserved.

// LatencyCritical describes a latency-critical service running on the
// simulated machine.
type LatencyCritical struct {
	// Model is the service's application model on the machine.
	Model machine.AppModel
	// PeakRPS is the request throughput sustained at full resources.
	PeakRPS float64
	// BaseLatency is the zero-queueing service latency.
	BaseLatency time.Duration
	// SLO is the 95th-percentile latency objective (§6.3: 1 ms).
	SLO time.Duration
}

// Memcached returns the CloudSuite memcached stand-in: an LLC-sensitive
// key-value store (its hot object set rewards cache capacity) with modest
// streaming traffic, pinned to 4 cores.
func Memcached(cfg machine.Config) LatencyCritical {
	return LatencyCritical{
		Model: machine.AppModel{
			Name:        "memcached",
			Cores:       4,
			CPIBase:     1.0,
			AccPerInstr: 0.006,
			Hot:         []machine.WSComponent{{Bytes: 6 * mb, Weight: 0.93, MLP: 1}},
			StreamFrac:  0.07,
			MLP:         4,
		},
		PeakRPS:     240_000,
		BaseLatency: 250 * time.Microsecond,
		SLO:         time.Millisecond,
	}
}

// P95 returns the 95th-percentile latency at the given offered load when
// the service achieves perfFraction of its full-resource performance
// (IPS/IPS_full on the machine). The model is M/M/1: the achievable
// service rate scales with performance, and the p95 sojourn time is
// base + ln(20)/(μ−λ). An overloaded service returns a large saturated
// latency rather than infinity so callers can compare magnitudes.
func (lc LatencyCritical) P95(perfFraction, loadRPS float64) time.Duration {
	if perfFraction <= 0 || loadRPS < 0 {
		return time.Hour
	}
	mu := lc.PeakRPS * perfFraction
	if loadRPS >= mu*0.999 {
		return time.Hour
	}
	queue := math.Log(20) / (mu - loadRPS) // seconds
	return lc.BaseLatency + time.Duration(queue*float64(time.Second))
}

// MinPerfFraction returns the smallest performance fraction (IPS/IPS_full)
// at which the service still meets its SLO at the given load — the knob
// the envelope manager turns to size the LC partition.
func (lc LatencyCritical) MinPerfFraction(loadRPS float64) (float64, error) {
	if loadRPS < 0 {
		return 0, fmt.Errorf("workloads: negative load %v", loadRPS)
	}
	if lc.P95(1, loadRPS) > lc.SLO {
		return 0, fmt.Errorf("workloads: load %v RPS cannot meet the SLO even at full performance", loadRPS)
	}
	// Binary-search the monotone P95(perf) curve.
	lo, hi := 1e-3, 1.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if lc.P95(mid, loadRPS) <= lc.SLO {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// WordCount returns the Spark Word Count batch model (64 GB input): a
// bandwidth-heavy scan with a small shuffle working set.
func WordCount(cfg machine.Config) machine.AppModel {
	return machine.AppModel{
		Name:        "wordcount",
		Cores:       4,
		CPIBase:     0.8,
		AccPerInstr: 0.02,
		Hot:         []machine.WSComponent{{Bytes: 2 * mb, Weight: 0.25, MLP: 4}},
		StreamFrac:  0.75,
		MLP:         10,
	}
}

// Kmeans returns the Spark Kmeans batch model (4 GB input): iterative
// passes over centroids (cache-resident) and points (streamed), sensitive
// to both LLC capacity and bandwidth.
func Kmeans(cfg machine.Config) machine.AppModel {
	return machine.AppModel{
		Name:        "kmeans",
		Cores:       4,
		CPIBase:     0.9,
		AccPerInstr: 0.015,
		Hot:         []machine.WSComponent{{Bytes: 10 * mb, Weight: 0.5, MLP: 1}},
		StreamFrac:  0.5,
		MLP:         8,
	}
}
