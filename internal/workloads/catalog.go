// Package workloads provides the application models used throughout the
// reproduction: the eleven multithreaded benchmarks of Table 2 (from
// PARSEC, SPLASH-2, and NPB), the STREAM reference, the workload-mix
// builders of the evaluation section, and the latency-critical/batch
// models of the case study.
//
// Substitution note (see DESIGN.md): the paper runs the real benchmark
// binaries; we model each benchmark analytically (internal/machine's
// AppModel) and calibrate the parameters so that
//
//  1. the solo full-resource LLC access and miss rates match Table 2, and
//  2. each model lands in the paper's sensitivity class under the paper's
//     own classification rules (§3.3: ≥15 % degradation from 11→1 ways
//     and/or from MBA 100→10; <1 % on both for the insensitive class).
//
// The calibration tests in catalog_test.go assert both properties.
//
// One documented deviation: FMM's Table 2 rates (6.1×10⁶ accesses/s) are
// too low for any linear CPI model to produce its measured ≥15 % LLC and
// bandwidth sensitivity — memory stalls at that access rate are bounded by
// ~4 % of cycles. We scale FMM's rates by 6× (to 3.7×10⁷/s), preserving
// its miss ratio, its rank as the least memory-intensive LM benchmark,
// and — most importantly — its sensitivity class, which is what the
// controller perceives.
package workloads

import (
	"fmt"

	"repro/internal/machine"
)

// Category is the paper's four-way benchmark classification (§3.3).
type Category int

const (
	// LLCSensitive: ≥15 % degradation when ways drop from 11 to 1.
	LLCSensitive Category = iota
	// BWSensitive: ≥15 % degradation when MBA drops from 100 to 10.
	BWSensitive
	// DualSensitive: both of the above (the paper's "LLC- & memory
	// BW-sensitive", abbreviated LM).
	DualSensitive
	// Insensitive: <1 % degradation on both axes.
	Insensitive
)

// String returns the paper's name for the category.
func (c Category) String() string {
	switch c {
	case LLCSensitive:
		return "LLC-sensitive"
	case BWSensitive:
		return "Memory bandwidth-sensitive"
	case DualSensitive:
		return "LLC- & memory BW-sensitive"
	case Insensitive:
		return "Insensitive"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Spec pairs a calibrated application model with its classification and
// the Table 2 reference rates it was calibrated against.
type Spec struct {
	Model    machine.AppModel
	Category Category
	// Table2AccRate and Table2MissRate are the paper's measured LLC
	// accesses and misses per second (solo, 4 threads, full resources).
	Table2AccRate  float64
	Table2MissRate float64
}

const mb = 1 << 20

// benchDef is the raw calibration input for one benchmark.
type benchDef struct {
	name      string
	category  Category
	cpiBase   float64
	streamMLP float64
	hot       []machine.WSComponent
	accRate   float64 // target LLC accesses/s at full resources, 4 threads
	missRate  float64 // target LLC misses/s (defines the stream fraction)
	paperAcc  float64 // Table 2 value (differs from accRate only for FMM)
	paperMiss float64
}

// defs lists the eleven benchmarks. Hot working-set sizes encode the
// paper's "ways needed for 90 % performance" findings (§4.1): WN, WS, RT
// need 4, 3, 2 ways (8, 6, 4 MB), so their hot sets are sized just under
// those capacities. Stream fractions are fixed by Table 2's miss/access
// ratios. MLP values separate latency-bound hot structures (pointer-heavy,
// MLP 1) from overlapped sweeps.
func defs() []benchDef {
	return []benchDef{
		{
			name: "WN", category: LLCSensitive, cpiBase: 0.9, streamMLP: 1,
			hot:     []machine.WSComponent{{Bytes: 7.5 * mb, MLP: 1}},
			accRate: 6.91e7, missRate: 2.58e4,
		},
		{
			name: "WS", category: LLCSensitive, cpiBase: 0.9, streamMLP: 1,
			hot:     []machine.WSComponent{{Bytes: 5.5 * mb, MLP: 1}},
			accRate: 4.32e7, missRate: 9.12e5,
		},
		{
			name: "RT", category: LLCSensitive, cpiBase: 1.1, streamMLP: 1,
			hot:     []machine.WSComponent{{Bytes: 3.5 * mb, MLP: 1}},
			accRate: 3.76e7, missRate: 2.16e4,
		},
		{
			name: "OC", category: BWSensitive, cpiBase: 0.8, streamMLP: 12,
			hot:     []machine.WSComponent{{Bytes: 1 * mb, MLP: 4}},
			accRate: 5.19e7, missRate: 4.88e7,
		},
		{
			name: "CG", category: BWSensitive, cpiBase: 0.8, streamMLP: 10,
			hot:     []machine.WSComponent{{Bytes: 1.5 * mb, MLP: 4}},
			accRate: 3.10e8, missRate: 1.12e8,
		},
		{
			name: "FT", category: BWSensitive, cpiBase: 0.7, streamMLP: 2,
			hot:     []machine.WSComponent{{Bytes: 2 * mb, MLP: 4}},
			accRate: 2.45e7, missRate: 2.00e7,
		},
		{
			name: "SP", category: DualSensitive, cpiBase: 0.8, streamMLP: 8,
			hot:     []machine.WSComponent{{Bytes: 12 * mb, MLP: 2}},
			accRate: 1.69e8, missRate: 9.21e7,
		},
		{
			name: "ON", category: DualSensitive, cpiBase: 0.8, streamMLP: 8,
			hot:     []machine.WSComponent{{Bytes: 20 * mb, MLP: 1}},
			accRate: 9.49e7, missRate: 7.89e7,
		},
		{
			// FMM rates scaled 6× from Table 2; see the package comment.
			name: "FMM", category: DualSensitive, cpiBase: 0.9, streamMLP: 2,
			hot:     []machine.WSComponent{{Bytes: 14 * mb, MLP: 1}},
			accRate: 3.67e7, missRate: 2.08e7,
			paperAcc: 6.12e6, paperMiss: 3.47e6,
		},
		{
			name: "SW", category: Insensitive, cpiBase: 0.6, streamMLP: 1,
			hot:     []machine.WSComponent{{Bytes: 0.5 * mb, MLP: 1}},
			accRate: 1.08e4, missRate: 7.98e2,
		},
		{
			name: "EP", category: Insensitive, cpiBase: 0.6, streamMLP: 1,
			hot:     []machine.WSComponent{{Bytes: 1 * mb, MLP: 1}},
			accRate: 7.34e5, missRate: 1.79e4,
		},
	}
}

// DefaultThreads is the thread (= dedicated core) count each Table 2
// benchmark was characterized with (§3.3).
const DefaultThreads = 4

// build calibrates one definition into a model: given the target access
// rate T at full resources on cores c, solve
//
//	T = D·a / (CPIBase + a·k),  D = c·freq,
//	k = hitCost·(1−MR) + missCost·weightedMiss  (full capacity, MBA 100)
//
// for the accesses-per-instruction a = CPIBase·T / (D − T·k). The miss
// ratio at full capacity equals the stream fraction by construction (hot
// sets are sized to fit the LLC).
func build(cfg machine.Config, d benchDef) (Spec, error) {
	if d.accRate <= 0 || d.missRate < 0 || d.missRate > d.accRate {
		return Spec{}, fmt.Errorf("workloads: %s has invalid rate targets acc=%v miss=%v",
			d.name, d.accRate, d.missRate)
	}
	streamFrac := d.missRate / d.accRate
	hotWeight := 1 - streamFrac
	hot := make([]machine.WSComponent, len(d.hot))
	weightTotal := 0.0
	for _, c := range d.hot {
		weightTotal += c.Weight
	}
	for i, c := range d.hot {
		hot[i] = c
		if weightTotal == 0 {
			// Unspecified weights: distribute the hot weight evenly.
			hot[i].Weight = hotWeight / float64(len(d.hot))
		} else {
			hot[i].Weight = hotWeight * c.Weight / weightTotal
		}
	}
	model := machine.AppModel{
		Name:       d.name,
		Cores:      DefaultThreads,
		CPIBase:    d.cpiBase,
		Hot:        hot,
		StreamFrac: streamFrac,
		MLP:        d.streamMLP,
	}
	fullCap := float64(cfg.LLCWays) * cfg.WayBytes
	mr, weighted := model.MissBreakdown(fullCap)
	k := cfg.HitCostCycles*(1-mr) + cfg.MissCostCycles*weighted
	dRate := float64(DefaultThreads) * cfg.FreqHz
	denom := dRate - d.accRate*k
	if denom <= 0 {
		return Spec{}, fmt.Errorf(
			"workloads: %s infeasible: access rate %.3g needs %.3g stall cycles/access against %.3g available",
			d.name, d.accRate, k, dRate)
	}
	model.AccPerInstr = d.cpiBase * d.accRate / denom
	if err := model.Validate(); err != nil {
		return Spec{}, fmt.Errorf("workloads: %s: %w", d.name, err)
	}
	paperAcc, paperMiss := d.paperAcc, d.paperMiss
	if paperAcc == 0 {
		paperAcc, paperMiss = d.accRate, d.missRate
	}
	return Spec{
		Model:          model,
		Category:       d.category,
		Table2AccRate:  paperAcc,
		Table2MissRate: paperMiss,
	}, nil
}

// Catalog returns the eleven Table 2 benchmarks calibrated against cfg,
// in the paper's order.
func Catalog(cfg machine.Config) ([]Spec, error) {
	ds := defs()
	specs := make([]Spec, len(ds))
	for i, d := range ds {
		s, err := build(cfg, d)
		if err != nil {
			return nil, err
		}
		specs[i] = s
	}
	return specs, nil
}

// ByName returns one calibrated benchmark.
func ByName(cfg machine.Config, name string) (Spec, error) {
	for _, d := range defs() {
		if d.name == name {
			return build(cfg, d)
		}
	}
	return Spec{}, fmt.Errorf("workloads: unknown benchmark %q", name)
}

// Names lists the benchmark names in Table 2 order.
func Names() []string {
	ds := defs()
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.name
	}
	return out
}

// Stream returns the STREAM reference model (§3.3): a maximally
// bandwidth-intensive application with no temporal locality, run on every
// core, used to determine the machine's peak memory traffic at each MBA
// level.
func Stream(cfg machine.Config) machine.AppModel {
	return machine.AppModel{
		Name:        "STREAM",
		Cores:       cfg.Cores,
		CPIBase:     0.5,
		AccPerInstr: 0.06,
		StreamFrac:  1,
		MLP:         16,
	}
}

// StreamMissRates profiles the STREAM reference solo at every MBA level
// (full LLC ways) and returns the miss rate per level — the denominator of
// the memory-traffic ratio used by the bandwidth classifier (§5.3).
func StreamMissRates(m *machine.Machine) (map[int]float64, error) {
	cfg := m.Config()
	model := Stream(cfg)
	out := make(map[int]float64)
	for level := 10; level <= 100; level += 10 {
		perf, err := m.SoloPerfAt(model, machine.Alloc{CBM: cfg.FullMask(), MBALevel: level})
		if err != nil {
			return nil, err
		}
		out[level] = perf.MissRate
	}
	return out, nil
}
