package workloads

import (
	"math"
	"testing"

	"repro/internal/machine"
	"repro/internal/membw"
)

func testMachine(t *testing.T) *machine.Machine {
	t.Helper()
	m, err := machine.New(machine.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func alloc(cfg machine.Config, ways, mba int) machine.Alloc {
	return machine.Alloc{CBM: (uint64(1) << ways) - 1, MBALevel: mba}
}

func TestCatalogComplete(t *testing.T) {
	specs, err := Catalog(machine.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 11 {
		t.Fatalf("catalog has %d benchmarks, want 11 (Table 2)", len(specs))
	}
	wantCategories := map[Category]int{
		LLCSensitive: 3, BWSensitive: 3, DualSensitive: 3, Insensitive: 2,
	}
	got := map[Category]int{}
	for _, s := range specs {
		got[s.Category]++
		if err := s.Model.Validate(); err != nil {
			t.Errorf("%s: invalid model: %v", s.Model.Name, err)
		}
		if s.Model.Cores != DefaultThreads {
			t.Errorf("%s: cores=%d want %d", s.Model.Name, s.Model.Cores, DefaultThreads)
		}
	}
	for cat, n := range wantCategories {
		if got[cat] != n {
			t.Errorf("category %v: %d benchmarks, want %d", cat, got[cat], n)
		}
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != 11 || names[0] != "WN" || names[10] != "EP" {
		t.Errorf("Names()=%v", names)
	}
}

func TestByName(t *testing.T) {
	cfg := machine.DefaultConfig()
	s, err := ByName(cfg, "CG")
	if err != nil {
		t.Fatal(err)
	}
	if s.Model.Name != "CG" || s.Category != BWSensitive {
		t.Errorf("ByName(CG)=%+v", s)
	}
	if _, err := ByName(cfg, "nope"); err == nil {
		t.Error("unknown name should error")
	}
}

// TestTable2Calibration asserts that each model's solo full-resource LLC
// access and miss rates land within 12 % of the calibration targets
// (congestion and arbitration introduce small deviations from the
// closed-form calibration).
func TestTable2Calibration(t *testing.T) {
	m := testMachine(t)
	specs, err := Catalog(m.Config())
	if err != nil {
		t.Fatal(err)
	}
	targets := map[string][2]float64{
		"WN": {6.91e7, 2.58e4}, "WS": {4.32e7, 9.12e5}, "RT": {3.76e7, 2.16e4},
		"OC": {5.19e7, 4.88e7}, "CG": {3.10e8, 1.12e8}, "FT": {2.45e7, 2.00e7},
		"SP": {1.69e8, 9.21e7}, "ON": {9.49e7, 7.89e7},
		"FMM": {3.67e7, 2.08e7}, // scaled 6× from Table 2, see package doc
		"SW":  {1.08e4, 7.98e2}, "EP": {7.34e5, 1.79e4},
	}
	for _, s := range specs {
		want, ok := targets[s.Model.Name]
		if !ok {
			t.Fatalf("no target for %s", s.Model.Name)
		}
		perf, err := m.SoloPerf(s.Model)
		if err != nil {
			t.Fatalf("%s: %v", s.Model.Name, err)
		}
		if rel := math.Abs(perf.AccessRate-want[0]) / want[0]; rel > 0.12 {
			t.Errorf("%s: access rate %.3g vs Table 2 %.3g (off by %.1f%%)",
				s.Model.Name, perf.AccessRate, want[0], rel*100)
		}
		if rel := math.Abs(perf.MissRate-want[1]) / want[1]; rel > 0.12 {
			t.Errorf("%s: miss rate %.3g vs Table 2 %.3g (off by %.1f%%)",
				s.Model.Name, perf.MissRate, want[1], rel*100)
		}
	}
}

// TestPaperClassificationRules applies the paper's own §3.3 rules to every
// model and asserts the resulting class matches Table 2.
func TestPaperClassificationRules(t *testing.T) {
	m := testMachine(t)
	cfg := m.Config()
	specs, err := Catalog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		full, err := m.SoloPerf(s.Model)
		if err != nil {
			t.Fatal(err)
		}
		oneWay, err := m.SoloPerfAt(s.Model, alloc(cfg, 1, 100))
		if err != nil {
			t.Fatal(err)
		}
		lowBW, err := m.SoloPerfAt(s.Model, alloc(cfg, cfg.LLCWays, 10))
		if err != nil {
			t.Fatal(err)
		}
		llcDrop := 1 - oneWay.IPS/full.IPS
		bwDrop := 1 - lowBW.IPS/full.IPS
		llcSens := llcDrop >= 0.15
		bwSens := bwDrop >= 0.15
		var got Category
		switch {
		case llcSens && bwSens:
			got = DualSensitive
		case llcSens:
			got = LLCSensitive
		case bwSens:
			got = BWSensitive
		case llcDrop < 0.01 && bwDrop < 0.01:
			got = Insensitive
		default:
			t.Errorf("%s: in no class (llcDrop=%.1f%% bwDrop=%.1f%%)",
				s.Model.Name, llcDrop*100, bwDrop*100)
			continue
		}
		if got != s.Category {
			t.Errorf("%s: classified %v, Table 2 says %v (llcDrop=%.1f%% bwDrop=%.1f%%)",
				s.Model.Name, got, s.Category, llcDrop*100, bwDrop*100)
		}
	}
}

// TestWaysFor90Percent reproduces the §4.1 finding that WN, WS, RT need
// 4, 3, and 2 ways to reach 90 % of full performance.
func TestWaysFor90Percent(t *testing.T) {
	m := testMachine(t)
	cfg := m.Config()
	want := map[string]int{"WN": 4, "WS": 3, "RT": 2}
	for name, wantWays := range want {
		s, err := ByName(cfg, name)
		if err != nil {
			t.Fatal(err)
		}
		full, err := m.SoloPerf(s.Model)
		if err != nil {
			t.Fatal(err)
		}
		got := cfg.LLCWays
		for w := 1; w <= cfg.LLCWays; w++ {
			perf, err := m.SoloPerfAt(s.Model, alloc(cfg, w, 100))
			if err != nil {
				t.Fatal(err)
			}
			if perf.IPS >= 0.9*full.IPS {
				got = w
				break
			}
		}
		if got != wantWays {
			t.Errorf("%s reaches 90%% at %d ways, paper says %d", name, got, wantWays)
		}
	}
}

// TestMBAFor90Percent checks the §4.1 finding that the BW-sensitive
// benchmarks need low-to-mid MBA levels (paper: OC 30, CG 20, FT 30) to
// reach 90 % of full performance. We assert the level is within ±10 of the
// paper's (the MBA throttle curve of the real part is not published).
func TestMBAFor90Percent(t *testing.T) {
	m := testMachine(t)
	cfg := m.Config()
	want := map[string]int{"OC": 30, "CG": 20, "FT": 30}
	for name, wantLevel := range want {
		s, err := ByName(cfg, name)
		if err != nil {
			t.Fatal(err)
		}
		full, err := m.SoloPerf(s.Model)
		if err != nil {
			t.Fatal(err)
		}
		got := 100
		for level := 10; level <= 100; level += 10 {
			perf, err := m.SoloPerfAt(s.Model, alloc(cfg, cfg.LLCWays, level))
			if err != nil {
				t.Fatal(err)
			}
			if perf.IPS >= 0.9*full.IPS {
				got = level
				break
			}
		}
		if got < wantLevel-10 || got > wantLevel+10 {
			t.Errorf("%s reaches 90%% at MBA %d, paper says %d (±10 accepted)",
				name, got, wantLevel)
		}
	}
}

func TestStreamSaturatesBandwidth(t *testing.T) {
	m := testMachine(t)
	cfg := m.Config()
	perf, err := m.SoloPerf(Stream(cfg))
	if err != nil {
		t.Fatal(err)
	}
	traffic := perf.MissRate * cfg.LineBytes * cfg.WritebackFactor
	if traffic < 0.95*cfg.BW.TotalBandwidth {
		t.Errorf("STREAM traffic %.3g should saturate the %.3g budget",
			traffic, cfg.BW.TotalBandwidth)
	}
}

func TestStreamMissRatesMonotone(t *testing.T) {
	m := testMachine(t)
	rates, err := StreamMissRates(m)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for level := 10; level <= 100; level += 10 {
		r, ok := rates[level]
		if !ok {
			t.Fatalf("missing level %d", level)
		}
		if r < prev {
			t.Errorf("STREAM miss rate not monotone at level %d: %v < %v", level, r, prev)
		}
		prev = r
	}
	if err := membw.ValidateLevel(10); err != nil {
		t.Fatal(err)
	}
	// Throttling must actually bite: level 10 well below level 100.
	if rates[10] > 0.5*rates[100] {
		t.Errorf("MBA 10 should throttle STREAM strongly: %v vs %v", rates[10], rates[100])
	}
}

func TestCategoryString(t *testing.T) {
	for _, c := range []Category{LLCSensitive, BWSensitive, DualSensitive, Insensitive} {
		if c.String() == "" {
			t.Errorf("empty string for %d", int(c))
		}
	}
	if Category(99).String() == "" {
		t.Error("unknown category should still render")
	}
}
