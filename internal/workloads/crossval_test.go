package workloads

import (
	"math"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/machine"
	"repro/internal/trace"
)

// crossvalCfg is a scaled-down 11-way cache so trace simulation stays
// fast: 4096 sets × 11 ways × 64 B = 2.75 MB (way size 256 KB).
var crossvalCfg = cachesim.Config{SizeBytes: 11 * 64 * 4096, Ways: 11, LineBytes: 64}

// TestAnalyticModelMatchesCacheSim grounds the analytic working-set
// mixture model (machine.AppModel.MissRatio) against the trace-driven
// set-associative cache simulator across the three access regimes the
// model composes.
//
// Random (uniform) reuse is the regime the fractional-coverage term
// represents: with capacity C over a working set W, steady-state LRU
// keeps ~C/W of the set resident, so the miss ratio is ≈ 1 − C/W. (A
// strictly sequential loop instead thrashes to a miss ratio of 1 below
// capacity; that LRU pathology is covered by cachesim's own tests.)
func TestAnalyticModelMatchesCacheSim(t *testing.T) {
	if err := crossvalCfg.Validate(); err != nil {
		t.Fatal(err)
	}
	wayBytes := float64(crossvalCfg.SizeBytes) / float64(crossvalCfg.Ways)
	hotBytes := uint64(6 * 64 * 4096) // 6 ways' worth of hot data

	t.Run("hot-only", func(t *testing.T) {
		model := machine.AppModel{
			Name: "hot", Cores: 1, CPIBase: 1, AccPerInstr: 0.01,
			Hot: []machine.WSComponent{{Bytes: float64(hotBytes), Weight: 1}},
		}
		gen, err := trace.NewUniform(0, hotBytes, 64, 7)
		if err != nil {
			t.Fatal(err)
		}
		mrc, err := cachesim.ProfileMRC(crossvalCfg, gen, nil, 400_000, 400_000)
		if err != nil {
			t.Fatal(err)
		}
		for w := 1; w <= crossvalCfg.Ways; w++ {
			analytic := model.MissRatio(float64(w) * wayBytes)
			measured := mrc.At(w)
			if diff := math.Abs(analytic - measured); diff > 0.08 {
				t.Errorf("ways=%d: analytic %.3f vs simulated %.3f (Δ=%.3f)",
					w, analytic, measured, diff)
			}
		}
	})

	t.Run("stream-only", func(t *testing.T) {
		// A stream over a region far larger than the cache misses on
		// (almost) every access at every capacity — the StreamFrac term.
		gen, err := trace.NewSequential(1<<32, 256<<20, 64)
		if err != nil {
			t.Fatal(err)
		}
		mrc, err := cachesim.ProfileMRC(crossvalCfg, gen, nil, 100_000, 200_000)
		if err != nil {
			t.Fatal(err)
		}
		for w := 1; w <= crossvalCfg.Ways; w++ {
			if mrc.At(w) < 0.99 {
				t.Errorf("ways=%d: streaming miss ratio %.3f, want ~1", w, mrc.At(w))
			}
		}
	})

	t.Run("mixture", func(t *testing.T) {
		const (
			hotWeight  = 0.7
			streamFrac = 0.3
		)
		model := machine.AppModel{
			Name: "mix", Cores: 1, CPIBase: 1, AccPerInstr: 0.01,
			Hot:        []machine.WSComponent{{Bytes: float64(hotBytes), Weight: hotWeight}},
			StreamFrac: streamFrac,
		}
		hot, err := trace.NewUniform(0, hotBytes, 64, 7)
		if err != nil {
			t.Fatal(err)
		}
		stream, err := trace.NewSequential(1<<32, 256<<20, 64)
		if err != nil {
			t.Fatal(err)
		}
		mix, err := trace.NewMixture(13,
			trace.Component{Gen: hot, Weight: hotWeight},
			trace.Component{Gen: stream, Weight: streamFrac},
		)
		if err != nil {
			t.Fatal(err)
		}
		mrc, err := cachesim.ProfileMRC(crossvalCfg, mix, nil, 400_000, 400_000)
		if err != nil {
			t.Fatal(err)
		}
		// Known approximation, documented here and in DESIGN.md: the
		// analytic model ignores *self-pollution* — under LRU the
		// application's own streaming insertions steal capacity from its
		// hot set, so near the fit point the simulated miss ratio sits
		// above the analytic one (we measure up to ~+0.28 at 6 ways, the
		// exact fit point, shrinking in both directions).
		// The analytic curve must remain a lower bound that converges at
		// both ends: below the fit point pollution is second-order, and
		// with ample headroom the hot set survives the stream.
		for w := 1; w <= crossvalCfg.Ways; w++ {
			analytic := model.MissRatio(float64(w) * wayBytes)
			measured := mrc.At(w)
			if measured < analytic-0.03 {
				t.Errorf("ways=%d: simulated %.3f below analytic lower bound %.3f",
					w, measured, analytic)
			}
			if measured > analytic+0.30 {
				t.Errorf("ways=%d: simulated %.3f too far above analytic %.3f",
					w, measured, analytic)
			}
		}
		// Tight agreement at the ends, where the model is calibrated:
		// one way (nearly everything misses) and full capacity (only the
		// stream misses).
		if one := mrc.At(1); math.Abs(one-model.MissRatio(wayBytes)) > 0.10 {
			t.Errorf("1-way simulated miss ratio %.3f vs analytic %.3f",
				one, model.MissRatio(wayBytes))
		}
		if full := mrc.At(crossvalCfg.Ways); math.Abs(full-streamFrac) > 0.08 {
			t.Errorf("full-cache simulated miss ratio %.3f, want ≈ stream fraction %.2f",
				full, streamFrac)
		}
	})
}
