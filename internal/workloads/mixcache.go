package workloads

import (
	"fmt"

	"repro/internal/machine"
)

// MixCache precomputes every workload mix drawable on one machine
// configuration — all seven kinds at every feasible application count —
// plus the STREAM reference rates, so a driver that launches thousands
// of nodes (the fleet) resolves each node's mix with a map lookup
// instead of rebuilding the models from the catalog. The cached slices
// are built by the same Mix calls a direct caller would make, so the
// models are bit-identical to the uncached path; they are shared and
// read-only — callers must not mutate them (machine.AddApp copies the
// model by value, so launching from a cached mix is safe).
type MixCache struct {
	cfg    machine.Config
	mixes  map[mixKey][]machine.AppModel
	stream map[int]float64
}

type mixKey struct {
	kind MixKind
	n    int
}

// NewMixCache eagerly builds the mix table for cfg: every kind at every
// n from 2 up to min(LLCWays, Cores) (the feasibility bound Mix itself
// enforces — one way and one core per application). The STREAM
// reference is profiled once on a private throwaway machine.
func NewMixCache(cfg machine.Config) (*MixCache, error) {
	maxApps := cfg.LLCWays
	if cfg.Cores < maxApps {
		maxApps = cfg.Cores
	}
	if maxApps < 2 {
		return nil, fmt.Errorf("workloads: config fits %d apps, mixes need at least 2", maxApps)
	}
	c := &MixCache{
		cfg:   cfg,
		mixes: make(map[mixKey][]machine.AppModel, len(MixKinds())*(maxApps-1)),
	}
	for _, kind := range MixKinds() {
		for n := 2; n <= maxApps; n++ {
			models, err := Mix(cfg, kind, n)
			if err != nil {
				return nil, fmt.Errorf("workloads: mix cache %v/%d: %w", kind, n, err)
			}
			c.mixes[mixKey{kind, n}] = models
		}
	}
	m, err := machine.New(cfg)
	if err != nil {
		return nil, err
	}
	if c.stream, err = StreamMissRates(m); err != nil {
		return nil, err
	}
	return c, nil
}

// Config returns the configuration the cache was built for.
func (c *MixCache) Config() machine.Config { return c.cfg }

// Mix returns the cached mix of the given kind and size. The returned
// slice is shared and read-only. Combinations outside the precomputed
// range error exactly as the direct Mix call would have.
//
//copart:noalloc
func (c *MixCache) Mix(kind MixKind, n int) ([]machine.AppModel, error) {
	if models, ok := c.mixes[mixKey{kind, n}]; ok {
		return models, nil
	}
	// Not precomputed: fall through to the real constructor for its exact
	// error (or, for an n the bound excluded on an unusual config, its
	// result). Cold path by construction.
	return Mix(c.cfg, kind, n) //copart:allocok cache-miss fallback, off the fleet hot path
}

// StreamRef returns the cached STREAM reference miss rates (shared,
// read-only — the manager only reads it).
func (c *MixCache) StreamRef() map[int]float64 { return c.stream }
