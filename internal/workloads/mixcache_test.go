package workloads

import (
	"reflect"
	"testing"

	"repro/internal/machine"
)

// TestMixCacheInterning pins the interning contract the fleet's churn
// path relies on: every lookup of the same (kind, n) returns the same
// shared backing slice — not a copy — so thousands of arriving nodes
// drawing mixes touch no new memory.
func TestMixCacheInterning(t *testing.T) {
	cfg := machine.DefaultConfig()
	c, err := NewMixCache(cfg)
	if err != nil {
		t.Fatal(err)
	}
	maxApps := cfg.LLCWays
	if cfg.Cores < maxApps {
		maxApps = cfg.Cores
	}
	for _, kind := range MixKinds() {
		for n := 2; n <= maxApps; n++ {
			a, err := c.Mix(kind, n)
			if err != nil {
				t.Fatalf("%v/%d: %v", kind, n, err)
			}
			b, err := c.Mix(kind, n)
			if err != nil {
				t.Fatalf("%v/%d: %v", kind, n, err)
			}
			if len(a) == 0 || &a[0] != &b[0] {
				t.Fatalf("%v/%d: repeated lookups returned different backing arrays", kind, n)
			}
			direct, err := Mix(cfg, kind, n)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, direct) {
				t.Fatalf("%v/%d: cached mix differs from direct Mix", kind, n)
			}
		}
	}
}

// TestMixCacheChurnScaleAllocs drives churn-scale lookup counts —
// every (kind, n) combination, thousands of times — and pins the warm
// path at zero allocations.
func TestMixCacheChurnScaleAllocs(t *testing.T) {
	cfg := machine.DefaultConfig()
	c, err := NewMixCache(cfg)
	if err != nil {
		t.Fatal(err)
	}
	maxApps := cfg.LLCWays
	if cfg.Cores < maxApps {
		maxApps = cfg.Cores
	}
	kinds := MixKinds()
	avg := testing.AllocsPerRun(2000, func() {
		for _, kind := range kinds {
			for n := 2; n <= maxApps; n++ {
				if _, err := c.Mix(kind, n); err != nil {
					t.Fatal(err)
				}
			}
		}
	})
	if avg != 0 {
		t.Errorf("warm MixCache lookups allocate %.1f times per sweep, want 0", avg)
	}
}

// TestMixCacheFallback covers the cold path: combinations outside the
// precomputed range fall through to the real constructor and error
// exactly as it would.
func TestMixCacheFallback(t *testing.T) {
	cfg := machine.DefaultConfig()
	c, err := NewMixCache(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, cacheErr := c.Mix(MixKinds()[0], 1) // below the 2-app minimum
	_, directErr := Mix(cfg, MixKinds()[0], 1)
	if cacheErr == nil || directErr == nil {
		t.Fatalf("1-app mix accepted: cache=%v direct=%v", cacheErr, directErr)
	}
	if cacheErr.Error() != directErr.Error() {
		t.Errorf("fallback error %q differs from direct error %q", cacheErr, directErr)
	}
	if _, err := c.Mix(MixKinds()[0], 10000); err == nil {
		t.Error("absurd app count accepted")
	}
}

// TestMixCacheStreamRef pins that the cached STREAM reference matches a
// fresh profile on the same configuration.
func TestMixCacheStreamRef(t *testing.T) {
	cfg := machine.DefaultConfig()
	c, err := NewMixCache(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := c.StreamRef()
	if len(ref) == 0 {
		t.Fatal("empty STREAM reference")
	}
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := StreamMissRates(m)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, fresh) {
		t.Errorf("cached STREAM reference differs from a fresh profile")
	}
}

// TestMixCacheTooSmall covers the constructor bound.
func TestMixCacheTooSmall(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Cores = 1
	if _, err := NewMixCache(cfg); err == nil {
		t.Error("1-core config accepted")
	}
}
