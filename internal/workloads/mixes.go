package workloads

import (
	"fmt"

	"repro/internal/machine"
)

// MixKind enumerates the seven workload-mix families of §6.1.
type MixKind int

const (
	// HLLC is highly LLC-sensitive: n−1 LLC-sensitive benchmarks plus one
	// insensitive benchmark.
	HLLC MixKind = iota
	// HBW is highly memory bandwidth-sensitive.
	HBW
	// HBoth is highly LLC- and memory bandwidth-sensitive.
	HBoth
	// MLLC is moderately LLC-sensitive: ⌊n/2⌋ LLC-sensitive benchmarks,
	// the rest insensitive.
	MLLC
	// MBW is moderately memory bandwidth-sensitive.
	MBW
	// MBoth is moderately LLC- and memory bandwidth-sensitive.
	MBoth
	// IS is the all-insensitive mix.
	IS
)

// MixKinds returns the seven kinds in the paper's order (Figure 12).
func MixKinds() []MixKind {
	return []MixKind{HLLC, HBW, HBoth, MLLC, MBW, MBoth, IS}
}

// String returns the paper's label for the mix.
func (k MixKind) String() string {
	switch k {
	case HLLC:
		return "H-LLC"
	case HBW:
		return "H-BW"
	case HBoth:
		return "H-Both"
	case MLLC:
		return "M-LLC"
	case MBW:
		return "M-BW"
	case MBoth:
		return "M-Both"
	case IS:
		return "IS"
	default:
		return fmt.Sprintf("MixKind(%d)", int(k))
	}
}

// pools returns the benchmark names of each category, in Table 2 order.
func pools() map[Category][]string {
	return map[Category][]string{
		LLCSensitive:  {"WN", "WS", "RT"},
		BWSensitive:   {"OC", "CG", "FT"},
		DualSensitive: {"SP", "ON", "FMM"},
		Insensitive:   {"SW", "EP"},
	}
}

// drawFrom picks count benchmarks from a category pool, cloning with a
// numeric suffix once the pool is exhausted (the paper's sweeps to six
// applications necessarily repeat benchmarks).
func drawFrom(cfg machine.Config, cat Category, count int) ([]machine.AppModel, error) {
	pool := pools()[cat]
	out := make([]machine.AppModel, 0, count)
	for i := 0; i < count; i++ {
		spec, err := ByName(cfg, pool[i%len(pool)])
		if err != nil {
			return nil, err
		}
		model := spec.Model
		if i >= len(pool) {
			model.Name = fmt.Sprintf("%s#%d", model.Name, i/len(pool)+1)
		}
		out = append(out, model)
	}
	return out, nil
}

// Mix builds a workload mix of the given kind with n applications
// (the paper sweeps n from 3 to 6; any n ≥ 2 that fits the machine is
// accepted). Cores are split evenly: each application receives
// ⌊cores/n⌋ dedicated cores, mirroring the paper's pinned-thread setup.
func Mix(cfg machine.Config, kind MixKind, n int) ([]machine.AppModel, error) {
	if n < 2 {
		return nil, fmt.Errorf("workloads: mix needs at least 2 apps, got %d", n)
	}
	if n > cfg.LLCWays {
		return nil, fmt.Errorf("workloads: %d apps exceed %d LLC ways (each CLOS needs one way)",
			n, cfg.LLCWays)
	}
	coresPer := cfg.Cores / n
	if coresPer < 1 {
		return nil, fmt.Errorf("workloads: %d apps exceed %d cores", n, cfg.Cores)
	}

	var sensitive Category
	var sensCount int
	switch kind {
	case HLLC, HBW, HBoth:
		sensCount = n - 1
	case MLLC, MBW, MBoth:
		sensCount = n / 2
	case IS:
		sensCount = 0
	default:
		return nil, fmt.Errorf("workloads: unknown mix kind %d", int(kind))
	}
	switch kind {
	case HLLC, MLLC:
		sensitive = LLCSensitive
	case HBW, MBW:
		sensitive = BWSensitive
	case HBoth, MBoth:
		sensitive = DualSensitive
	}

	models := make([]machine.AppModel, 0, n)
	if sensCount > 0 {
		sens, err := drawFrom(cfg, sensitive, sensCount)
		if err != nil {
			return nil, err
		}
		models = append(models, sens...)
	}
	ins, err := drawFrom(cfg, Insensitive, n-sensCount)
	if err != nil {
		return nil, err
	}
	models = append(models, ins...)

	for i := range models {
		models[i].Cores = coresPer
	}
	return models, nil
}
