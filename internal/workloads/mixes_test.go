package workloads

import (
	"testing"
	"time"

	"repro/internal/machine"
)

func TestMixKindsOrder(t *testing.T) {
	kinds := MixKinds()
	if len(kinds) != 7 {
		t.Fatalf("got %d kinds, want 7", len(kinds))
	}
	wantLabels := []string{"H-LLC", "H-BW", "H-Both", "M-LLC", "M-BW", "M-Both", "IS"}
	for i, k := range kinds {
		if k.String() != wantLabels[i] {
			t.Errorf("kind %d = %s want %s", i, k, wantLabels[i])
		}
	}
	if MixKind(42).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestMixCompositionAt4(t *testing.T) {
	cfg := machine.DefaultConfig()
	tests := []struct {
		kind      MixKind
		wantNames []string
	}{
		{HLLC, []string{"WN", "WS", "RT", "SW"}},
		{HBW, []string{"OC", "CG", "FT", "SW"}},
		{HBoth, []string{"SP", "ON", "FMM", "SW"}},
		{MLLC, []string{"WN", "WS", "SW", "EP"}},
		{MBW, []string{"OC", "CG", "SW", "EP"}},
		{MBoth, []string{"SP", "ON", "SW", "EP"}},
		{IS, []string{"SW", "EP", "SW#2", "EP#2"}},
	}
	for _, tt := range tests {
		t.Run(tt.kind.String(), func(t *testing.T) {
			models, err := Mix(cfg, tt.kind, 4)
			if err != nil {
				t.Fatal(err)
			}
			if len(models) != 4 {
				t.Fatalf("got %d apps", len(models))
			}
			for i, m := range models {
				if m.Name != tt.wantNames[i] {
					t.Errorf("app %d = %s want %s", i, m.Name, tt.wantNames[i])
				}
				if m.Cores != 4 {
					t.Errorf("app %s cores=%d want 4", m.Name, m.Cores)
				}
				if err := m.Validate(); err != nil {
					t.Errorf("app %s invalid: %v", m.Name, err)
				}
			}
		})
	}
}

func TestMixAppCountSweep(t *testing.T) {
	cfg := machine.DefaultConfig()
	for _, n := range []int{3, 4, 5, 6} {
		for _, kind := range MixKinds() {
			models, err := Mix(cfg, kind, n)
			if err != nil {
				t.Fatalf("Mix(%v,%d): %v", kind, n, err)
			}
			if len(models) != n {
				t.Errorf("Mix(%v,%d) has %d apps", kind, n, len(models))
			}
			// Unique names (clones get suffixes).
			seen := map[string]bool{}
			totalCores := 0
			for _, m := range models {
				if seen[m.Name] {
					t.Errorf("Mix(%v,%d): duplicate name %s", kind, n, m.Name)
				}
				seen[m.Name] = true
				totalCores += m.Cores
			}
			if totalCores > cfg.Cores {
				t.Errorf("Mix(%v,%d): %d cores oversubscribed", kind, n, totalCores)
			}
		}
	}
}

func TestMixValidation(t *testing.T) {
	cfg := machine.DefaultConfig()
	if _, err := Mix(cfg, HLLC, 1); err == nil {
		t.Error("1-app mix should error")
	}
	if _, err := Mix(cfg, HLLC, 12); err == nil {
		t.Error("more apps than ways should error")
	}
	if _, err := Mix(cfg, MixKind(99), 4); err == nil {
		t.Error("unknown kind should error")
	}
	small := cfg
	small.Cores = 2
	if _, err := Mix(small, HLLC, 3); err == nil {
		t.Error("more apps than cores should error")
	}
}

func TestMixRunsOnMachine(t *testing.T) {
	cfg := machine.DefaultConfig()
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	models, err := Mix(cfg, HBoth, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range models {
		if err := m.AddApp(model); err != nil {
			t.Fatalf("AddApp(%s): %v", model.Name, err)
		}
	}
	if err := m.Step(time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestMemcachedModel(t *testing.T) {
	cfg := machine.DefaultConfig()
	lc := Memcached(cfg)
	if err := lc.Model.Validate(); err != nil {
		t.Fatal(err)
	}
	if lc.SLO != time.Millisecond {
		t.Errorf("SLO=%v want 1ms (§6.3)", lc.SLO)
	}
}

func TestP95Curve(t *testing.T) {
	lc := Memcached(machine.DefaultConfig())
	// Light load at full performance: near base latency.
	light := lc.P95(1.0, 10_000)
	if light < lc.BaseLatency || light > 2*lc.BaseLatency {
		t.Errorf("light-load p95 %v implausible (base %v)", light, lc.BaseLatency)
	}
	// Latency rises with load.
	heavy := lc.P95(1.0, 200_000)
	if heavy <= light {
		t.Errorf("p95 should rise with load: %v vs %v", heavy, light)
	}
	// Latency rises as performance is taken away.
	squeezed := lc.P95(0.5, 100_000)
	relaxed := lc.P95(1.0, 100_000)
	if squeezed <= relaxed {
		t.Errorf("p95 should rise as resources shrink: %v vs %v", squeezed, relaxed)
	}
	// Overload saturates instead of going negative/inf.
	if lc.P95(0.1, 200_000) != time.Hour {
		t.Error("overload should saturate")
	}
	if lc.P95(0, 100) != time.Hour {
		t.Error("zero performance should saturate")
	}
	if lc.P95(1, -5) != time.Hour {
		t.Error("negative load should saturate")
	}
}

func TestMinPerfFraction(t *testing.T) {
	lc := Memcached(machine.DefaultConfig())
	lowLoad, err := lc.MinPerfFraction(75_000)
	if err != nil {
		t.Fatal(err)
	}
	highLoad, err := lc.MinPerfFraction(150_000)
	if err != nil {
		t.Fatal(err)
	}
	if highLoad <= lowLoad {
		t.Errorf("higher load should need more resources: %v vs %v", highLoad, lowLoad)
	}
	// The found fraction actually meets the SLO, and a slightly smaller
	// one does not (tightness).
	if lc.P95(highLoad, 150_000) > lc.SLO {
		t.Error("MinPerfFraction result violates the SLO")
	}
	if lc.P95(highLoad*0.98, 150_000) <= lc.SLO {
		t.Error("MinPerfFraction is not tight")
	}
	if _, err := lc.MinPerfFraction(-1); err == nil {
		t.Error("negative load should error")
	}
	if _, err := lc.MinPerfFraction(10 * lc.PeakRPS); err == nil {
		t.Error("impossible load should error")
	}
}

func TestBatchModels(t *testing.T) {
	cfg := machine.DefaultConfig()
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wc := WordCount(cfg)
	km := Kmeans(cfg)
	if err := wc.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := km.Validate(); err != nil {
		t.Fatal(err)
	}
	// Word Count is bandwidth-sensitive; Kmeans is dual-sensitive —
	// distinct characteristics for CoPart to balance.
	for _, tc := range []struct {
		model   machine.AppModel
		wantLLC bool
		wantBW  bool
	}{
		{wc, false, true},
		{km, true, true},
	} {
		full, err := m.SoloPerf(tc.model)
		if err != nil {
			t.Fatal(err)
		}
		oneWay, err := m.SoloPerfAt(tc.model, machine.Alloc{CBM: 1, MBALevel: 100})
		if err != nil {
			t.Fatal(err)
		}
		lowBW, err := m.SoloPerfAt(tc.model, machine.Alloc{CBM: cfg.FullMask(), MBALevel: 10})
		if err != nil {
			t.Fatal(err)
		}
		gotLLC := 1-oneWay.IPS/full.IPS >= 0.15
		gotBW := 1-lowBW.IPS/full.IPS >= 0.15
		if gotLLC != tc.wantLLC || gotBW != tc.wantBW {
			t.Errorf("%s: llc=%v bw=%v want llc=%v bw=%v",
				tc.model.Name, gotLLC, gotBW, tc.wantLLC, tc.wantBW)
		}
	}
}
