#!/usr/bin/env bash
# Black-box smoke test for the copartd control plane: boot the daemon
# with the admission API on loopback, drive add/reweight/remove and a
# snapshot round-trip with curl, scrape /metrics, then shut down
# gracefully with SIGTERM. Fails on any unexpected status code, a
# missing metric, a non-deterministic snapshot replay, or a dirty exit.
#
# Run directly or via `make smoke`.
set -euo pipefail

cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
DPID=""
cleanup() {
    [ -n "$DPID" ] && kill "$DPID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

GO=${GO:-go}
$GO build -o "$TMP/copartd" ./cmd/copartd
$GO build -o "$TMP/snap2test" ./cmd/snap2test

# -pace throttles the simulated control loop to real time so the daemon
# stays up while curl drives it; -duration is effectively "until TERM".
"$TMP/copartd" -mix H-Both -apps 3 -duration 24h -seed 1 -pace 20ms \
    -listen 127.0.0.1:0 >"$TMP/copartd.log" 2>&1 &
DPID=$!

ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's#^control plane listening on http://##p' "$TMP/copartd.log" | head -1)
    [ -n "$ADDR" ] && break
    if ! kill -0 "$DPID" 2>/dev/null; then
        echo "FAIL: copartd exited during startup:"
        cat "$TMP/copartd.log"
        exit 1
    fi
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "FAIL: copartd never announced its listen address"
    cat "$TMP/copartd.log"
    exit 1
fi
BASE="http://$ADDR"
echo "copartd up at $BASE"

# req METHOD PATH WANT_STATUS [JSON_BODY] — run one request, keep the
# body in $TMP/resp, fail loudly on a status mismatch.
req() {
    local method=$1 path=$2 want=$3 body=${4:-}
    local args=(-sS -o "$TMP/resp" -w '%{http_code}' -X "$method")
    [ -n "$body" ] && args+=(-H 'Content-Type: application/json' -d "$body")
    local code
    code=$(curl "${args[@]}" "$BASE$path")
    if [ "$code" != "$want" ]; then
        echo "FAIL: $method $path -> $code, want $want"
        cat "$TMP/resp"
        exit 1
    fi
    echo "ok: $method $path -> $code"
}

req GET /healthz 200

# /readyz stays 503 until the first profiling pass completes.
for _ in $(seq 1 200); do
    code=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/readyz")
    [ "$code" = 200 ] && break
    sleep 0.1
done
req GET /readyz 200

# Admission lifecycle: admit a 1-core guest, reweight it, confirm it is
# visible, then negative-path checks.
req POST /apps 201 '{"name":"smoke","benchmark":"EP","cores":1,"weight":2.0}'
req PATCH /apps/smoke 200 '{"weight":1.5}'
# /apps serves the per-period mirror, so the admitted guest appears
# once the controller has re-profiled and reported — poll for it.
seen=""
for _ in $(seq 1 300); do
    if curl -s "$BASE/apps" | grep -q '"smoke"'; then
        seen=yes
        break
    fi
    sleep 0.1
done
[ -n "$seen" ] || { echo "FAIL: admitted app never appeared in /apps"; curl -s "$BASE/apps"; exit 1; }
echo "ok: admitted app visible in /apps"
req POST /apps 409 '{"name":"smoke","benchmark":"EP","cores":1}'
req POST /apps 400 '{"name":"bad","benchmark":"NOPE"}'
req DELETE /apps/ghost 404

# Snapshot round-trip: the served snapshot must parse and replay
# deterministically (snap2test -check replays it twice and compares).
req GET /snapshot 200
cp "$TMP/resp" "$TMP/snap.json"
"$TMP/snap2test" -snapshot "$TMP/snap.json" -duration 30s -check

req DELETE /apps/smoke 200

req GET /metrics 200
for metric in \
    'copart_admission_ops_total{op="add",outcome="ok"} 1' \
    'copart_admission_ops_total{op="remove",outcome="ok"} 1' \
    'copart_admission_ops_total{op="reweight",outcome="ok"} 1' \
    'copart_snapshots_total 1' \
    'copart_periods_total' \
    'copart_controller_degraded 0'; do
    if ! grep -qF "$metric" "$TMP/resp"; then
        echo "FAIL: /metrics missing: $metric"
        cat "$TMP/resp"
        exit 1
    fi
done
echo "ok: /metrics carries admission, snapshot, and health series"

# Graceful drain: TERM must finish the period, restore default
# schemata, and exit 0.
kill -TERM "$DPID"
status=0
wait "$DPID" || status=$?
DPID=""
if [ "$status" != 0 ]; then
    echo "FAIL: copartd exited $status after SIGTERM"
    cat "$TMP/copartd.log"
    exit 1
fi
grep -q "default allocations restored" "$TMP/copartd.log" || {
    echo "FAIL: drain did not restore default allocations"
    tail "$TMP/copartd.log"
    exit 1
}
echo "ok: graceful drain (exit 0, default allocations restored)"
echo "PASS: copartd control-plane smoke"
